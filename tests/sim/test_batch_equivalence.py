"""The batch backend's contract: bit-identical to the reference engine.

The vectorized :class:`~repro.sim.batch.BatchEngine` exists purely for
throughput — every observable of a run must match the reference engine
exactly: the :func:`~repro.faults.check.trace_fingerprint` (a sha256
over every round record and output), total bits, termination round, and
outputs.  A Hypothesis property sweeps (protocol × oblivious-adversary ×
seed) cells; directed tests pin the edges — error semantics, adaptive
fallback, lockstep replication, instrumentation, parallel workers, and
the schedule tape's interning behaviour.
"""

from __future__ import annotations

import logging

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import BandwidthExceeded, ConfigurationError, DisconnectedTopology
from repro.faults.check import trace_fingerprint
from repro.network.adversaries import (
    FunctionAdversary,
    OverlappingStarsAdversary,
    RandomConnectedAdversary,
    RotatingStarAdversary,
    ShiftingLineAdversary,
    StaticAdversary,
    TIntervalAdversary,
)
from repro.network.generators import line_edges, star_edges
from repro.protocols.cflood import cflood_factory
from repro.protocols.flooding import GossipMaxNode, TokenFloodNode
from repro.sim import RunConfig, replicate, run_protocol
from repro.sim.actions import Receive, Send
from repro.sim.batch import (
    BatchEngine,
    ScheduleTape,
    batch_fallback_reason,
    build_engine,
)
from repro.sim.coins import CoinSource
from repro.sim.engine import SynchronousEngine
from repro.sim.factories import BoundNode, Constant, NodeSet
from repro.sim.node import ProtocolNode

ADVERSARIES = ("static-line", "schedule", "random", "shifting-line",
               "rotating-star", "overlap-stars", "t-interval")
PROTOCOLS = ("token-flood", "gossip", "cflood-conservative", "cflood-known-d")


def _make_adversary(kind: str, ids, seed: int):
    ids = list(ids)
    if kind == "static-line":
        return StaticAdversary(ids, line_edges(ids))
    if kind == "schedule":
        from repro.network.adversaries import ScheduleAdversary

        return ScheduleAdversary(StaticAdversary(ids, star_edges(ids[0], ids)).schedule(3))
    if kind == "random":
        return RandomConnectedAdversary(ids, seed=seed)
    if kind == "shifting-line":
        return ShiftingLineAdversary(ids, seed=seed, reshuffle_every=2)
    if kind == "rotating-star":
        return RotatingStarAdversary(ids)
    if kind == "overlap-stars":
        return OverlappingStarsAdversary(ids)
    return TIntervalAdversary(ids, seed=seed, interval=3)


def _make_node_factory(kind: str, ids):
    n = len(ids)
    src = ids[0]
    if kind == "token-flood":
        return NodeSet(ids, BoundNode(TokenFloodNode, source=src))
    if kind == "gossip":
        return NodeSet(ids, BoundNode(GossipMaxNode))
    if kind == "cflood-conservative":
        return NodeSet(ids, cflood_factory(src, num_nodes=n))
    return NodeSet(ids, cflood_factory(src, d_param=max(2, n // 2)))


def _run_pair(make_nodes, make_adv, seed, max_rounds, **kwargs):
    """The same cell on both backends; returns (reference, batch) runs."""
    ref = run_protocol(
        make_nodes, make_adv,
        RunConfig(seed=seed, max_rounds=max_rounds, backend="reference", **kwargs),
    )
    bat = run_protocol(
        make_nodes, make_adv,
        RunConfig(seed=seed, max_rounds=max_rounds, backend="batch", **kwargs),
    )
    return ref, bat


def _assert_identical(ref, bat):
    assert bat.backend == "batch"
    assert ref.backend == "reference"
    assert trace_fingerprint(ref.trace) == trace_fingerprint(bat.trace)
    assert ref.total_bits == bat.total_bits
    assert ref.rounds == bat.rounds
    assert ref.terminated == bat.terminated
    assert ref.outputs == bat.outputs


# -- the property ----------------------------------------------------------


@st.composite
def _cells(draw):
    n = draw(st.integers(min_value=3, max_value=12))
    ids = tuple(range(draw(st.integers(min_value=0, max_value=3)), n + 3))
    protocol = draw(st.sampled_from(PROTOCOLS))
    adversary = draw(st.sampled_from(ADVERSARIES))
    adv_seed = draw(st.integers(min_value=0, max_value=2**16))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    return ids, protocol, adversary, adv_seed, seed


@given(_cells())
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_batch_backend_is_bit_identical(case):
    ids, protocol, adversary, adv_seed, seed = case
    make_nodes = _make_node_factory(protocol, ids)
    make_adv = Constant(_make_adversary(adversary, ids, adv_seed))
    max_rounds = 8 * len(ids)
    ref, bat = _run_pair(make_nodes, make_adv, seed, max_rounds)
    _assert_identical(ref, bat)


def test_replicate_lockstep_is_bit_identical():
    ids = tuple(range(10))
    make_nodes = _make_node_factory("token-flood", ids)
    make_adv = Constant(RotatingStarAdversary(list(ids)))
    seeds = [5, 6, 7, 8, 9, 10]
    ref = replicate(make_nodes, make_adv, seeds,
                    RunConfig(max_rounds=60, backend="reference"))
    bat = replicate(make_nodes, make_adv, seeds,
                    RunConfig(max_rounds=60, backend="batch"))
    assert [r.backend for r in bat.runs] == ["batch"] * len(seeds)
    assert [trace_fingerprint(r.trace) for r in ref.runs] == [
        trace_fingerprint(r.trace) for r in bat.runs
    ]
    assert [r.outputs for r in ref.runs] == [r.outputs for r in bat.runs]
    assert [r.total_bits for r in ref.runs] == [r.total_bits for r in bat.runs]


def test_parallel_workers_batch_is_bit_identical(monkeypatch):
    """REPRO_WORKERS=2 + batch backend: chunked pool run, same bits."""
    monkeypatch.setenv("REPRO_WORKERS", "2")
    ids = tuple(range(8))
    make_nodes = _make_node_factory("cflood-conservative", ids)
    make_adv = Constant(TIntervalAdversary(list(ids), seed=4, interval=2))
    seeds = [1, 2, 3, 4, 5]
    ref = replicate(make_nodes, make_adv, seeds,
                    RunConfig(max_rounds=80, backend="reference", workers=0))
    par = replicate(make_nodes, make_adv, seeds,
                    RunConfig(max_rounds=80, backend="batch"))
    assert [trace_fingerprint(r.trace) for r in ref.runs] == [
        trace_fingerprint(r.trace) for r in par.runs
    ]
    assert [r.outputs for r in ref.runs] == [r.outputs for r in par.runs]
    assert [r.backend for r in par.runs] == ["batch"] * len(seeds)


def test_instrumented_runs_match_and_count(monkeypatch):
    from repro.obs.metrics import MetricsRegistry

    reg_ref = MetricsRegistry()
    reg_bat = MetricsRegistry()
    ids = tuple(range(7))
    make_nodes = _make_node_factory("token-flood", ids)
    make_adv = Constant(OverlappingStarsAdversary(list(ids)))
    ref = run_protocol(make_nodes, make_adv, RunConfig(
        seed=11, max_rounds=40, instrument=True, registry=reg_ref,
        backend="reference"))
    bat = run_protocol(make_nodes, make_adv, RunConfig(
        seed=11, max_rounds=40, instrument=True, registry=reg_bat, backend="batch"))
    _assert_identical(ref, bat)
    ref_snap = reg_ref.snapshot()
    bat_snap = reg_bat.snapshot()
    assert set(ref_snap) == set(bat_snap)
    for key, metric in ref_snap.items():
        if metric["type"] == "counter":
            assert bat_snap[key]["value"] == metric["value"], key


# -- fallback --------------------------------------------------------------


def _adaptive_edges(round_, view):
    # reads the view: adaptive by construction
    ids = (0, 1, 2, 3)
    _ = view
    return line_edges(list(ids))


def test_adaptive_adversary_runs_on_batch_backend():
    ids = (0, 1, 2, 3)
    make_nodes = _make_node_factory("token-flood", ids)
    make_adv = Constant(FunctionAdversary(list(ids), _adaptive_edges))
    run = run_protocol(
        make_nodes, make_adv, RunConfig(seed=1, max_rounds=20, backend="batch")
    )
    assert run.backend == "batch"
    assert run.terminated


class _DynamicNodesAdversary(FunctionAdversary):
    dynamic_nodes = True


def test_dynamic_nodes_adversary_falls_back_with_logged_reason(caplog):
    ids = (0, 1, 2, 3)
    make_nodes = _make_node_factory("token-flood", ids)
    make_adv = Constant(_DynamicNodesAdversary(list(ids), _adaptive_edges))
    with caplog.at_level(logging.INFO, logger="repro.sim.batch"):
        run = run_protocol(
            make_nodes, make_adv, RunConfig(seed=1, max_rounds=20, backend="batch")
        )
    assert run.backend == "reference"
    assert any("dynamic_nodes" in rec.message for rec in caplog.records)
    assert run.terminated


def test_fallback_logs_once_per_replicate_cell(caplog):
    ids = (0, 1, 2, 3)
    make_nodes = _make_node_factory("token-flood", ids)
    make_adv = Constant(_DynamicNodesAdversary(list(ids), _adaptive_edges))
    with caplog.at_level(logging.INFO, logger="repro.sim.batch"):
        summary = replicate(
            make_nodes, make_adv, seeds=range(5),
            config=RunConfig(max_rounds=20, backend="batch", workers=0),
        )
    assert all(run.backend == "reference" for run in summary.runs)
    fallback_records = [
        rec for rec in caplog.records if "falling back to reference" in rec.message
    ]
    assert len(fallback_records) == 1  # one cell, one log line — not one per seed


def test_fallback_log_scope_dedups_and_restores(caplog):
    from repro.sim import fallback_log_scope
    from repro.sim.batch import _log_fallback

    with caplog.at_level(logging.INFO, logger="repro.sim.batch"):
        with fallback_log_scope():
            _log_fallback("reason A")
            _log_fallback("reason A")  # deduped inside the scope
            _log_fallback("reason B")  # distinct reasons still log
            with fallback_log_scope():  # nested scope starts fresh
                _log_fallback("reason A")
        _log_fallback("reason A")  # unscoped: logs every time
        _log_fallback("reason A")
    messages = [rec.message for rec in caplog.records]
    assert sum("reason A" in m for m in messages) == 4
    assert sum("reason B" in m for m in messages) == 1


def test_oblivious_function_adversary_opts_in():
    ids = (0, 1, 2, 3)
    adv = FunctionAdversary(list(ids), _adaptive_edges, oblivious=True)
    assert batch_fallback_reason(adv) is None
    make_nodes = _make_node_factory("token-flood", ids)
    ref, bat = _run_pair(make_nodes, Constant(adv), 1, 20)
    _assert_identical(ref, bat)


# -- error semantics -------------------------------------------------------


class _ChattyNode(ProtocolNode):
    def action(self, round_, coins):
        return Send(tuple(range(1000)))

    def on_messages(self, round_, payloads):
        pass


class _SinkNode(ProtocolNode):
    def action(self, round_, coins):
        return Receive()

    def on_messages(self, round_, payloads):
        pass


@pytest.mark.parametrize("backend", ["reference", "batch"])
def test_bandwidth_exceeded_matches(backend):
    ids = [1, 2]
    nodes = {1: _ChattyNode(1), 2: _SinkNode(2)}
    adv = StaticAdversary(ids, [(1, 2)])
    eng = build_engine(nodes, adv, CoinSource(0), backend=backend)
    with pytest.raises(BandwidthExceeded) as exc:
        eng.step()
    assert "node 1" in str(exc.value)


@pytest.mark.parametrize("backend", ["reference", "batch"])
def test_disconnected_topology_matches(backend):
    ids = [1, 2, 3, 4]
    nodes = {u: _SinkNode(u) for u in ids}
    adv = StaticAdversary(ids, [(1, 2), (3, 4)])  # two components
    eng = build_engine(nodes, adv, CoinSource(0), backend=backend)
    with pytest.raises(DisconnectedTopology) as exc:
        eng.step()
    assert "round 1" in str(exc.value)


def test_disconnected_raised_before_bandwidth():
    """Validation precedes delivery: both backends blame the topology."""
    ids = [1, 2, 3, 4]
    nodes = {1: _ChattyNode(1), **{u: _SinkNode(u) for u in ids[1:]}}
    adv = StaticAdversary(ids, [(1, 2), (3, 4)])
    for backend in ("reference", "batch"):
        eng = build_engine(nodes, adv, CoinSource(0), backend=backend)
        with pytest.raises(DisconnectedTopology):
            eng.step()


# -- the schedule tape -----------------------------------------------------


class TestScheduleTape:
    def test_adaptive_adversary_rejected(self):
        adv = FunctionAdversary([0, 1, 2], _adaptive_edges)
        with pytest.raises(ConfigurationError, match="oblivious"):
            ScheduleTape(adv)

    def test_key_interning_on_periodic_schedules(self):
        ids = list(range(6))
        tape = RotatingStarAdversary(ids).export_tape()
        tape.bind(ids)
        for r in range(1, 19):  # 3 full periods of 6
            tape.topology(r)
        assert tape.stats["unique_topologies"] == 6
        assert tape.stats["key_hits"] == 12

    def test_content_interning_without_keys(self):
        # a keyless oblivious adversary replaying the same edge set each
        # round still interns by content
        ids = list(range(4))
        adv = FunctionAdversary(ids, _adaptive_edges, oblivious=True)
        tape = ScheduleTape(adv)
        tape.bind(ids)
        t1 = tape.topology(1)
        t2 = tape.topology(2)
        assert t1 is t2
        assert tape.stats["unique_topologies"] == 1

    def test_dense_vs_sparse_representation(self):
        # above dense_node_limit the tape picks a sparse row form by
        # edge density: a 5-node line (4 edges < 25/128-ish) goes CSR
        ids = list(range(5))
        adv = StaticAdversary(ids, line_edges(ids))
        dense = ScheduleTape(adv)
        dense.bind(ids)
        sparse = ScheduleTape(adv, dense_node_limit=2)
        sparse.bind(ids)
        assert dense.topology(1).kind == "dense"
        assert dense.topology(1).adj is not None
        assert dense.representation == "dense"
        topo = sparse.topology(1)
        assert topo.adj is None
        assert topo.kind in ("bitset", "csr")
        assert (topo.words is not None) == (topo.kind == "bitset")
        assert (topo.indptr is not None) == (topo.kind == "csr")
        assert sparse.representation == topo.kind

    def test_forced_representations_cover_all_kinds(self):
        ids = list(range(5))
        adv = StaticAdversary(ids, line_edges(ids))
        for kind in ("bitset", "csr", "scan"):
            tape = ScheduleTape(adv, sparse=kind)
            tape.bind(ids)
            assert tape.topology(1).kind == kind
        with pytest.raises(ConfigurationError, match="sparse representation"):
            ScheduleTape(adv, sparse="nope")

    def test_bind_rejects_mismatched_node_set(self):
        ids = list(range(4))
        tape = ScheduleTape(StaticAdversary(ids, line_edges(ids)))
        tape.bind(ids)
        with pytest.raises(ConfigurationError):
            tape.bind([0, 1, 2])

    def test_shared_tape_across_engines(self):
        ids = list(range(6))
        adv = TIntervalAdversary(ids, seed=2, interval=4)
        tape = ScheduleTape(adv)
        runs = []
        for seed in (1, 2):
            nodes = {u: TokenFloodNode(u, source=0) for u in ids}
            eng = BatchEngine(nodes, adv, CoinSource(seed), tape=tape)
            runs.append(eng.run(30))
        ref_runs = []
        for seed in (1, 2):
            nodes = {u: TokenFloodNode(u, source=0) for u in ids}
            eng = SynchronousEngine(nodes, adv, CoinSource(seed))
            ref_runs.append(eng.run(30))
        for bat_tr, ref_tr in zip(runs, ref_runs):
            assert trace_fingerprint(bat_tr) == trace_fingerprint(ref_tr)


# -- observability records the backend -------------------------------------


def test_manifest_records_backend(tmp_path):
    from repro.obs.runtime import observe

    ids = tuple(range(5))
    make_nodes = _make_node_factory("token-flood", ids)
    make_adv = Constant(RotatingStarAdversary(list(ids)))
    out = tmp_path / "session"
    with observe(trace_dir=str(out), label="batch-test") as session:
        run_protocol(make_nodes, make_adv,
                     RunConfig(seed=1, max_rounds=30, backend="batch"))
        run_protocol(make_nodes, make_adv,
                     RunConfig(seed=1, max_rounds=30, backend="reference"))
    backends = [r.backend for r in session.manifest.runs]
    assert backends == ["batch", "reference"]

    from repro.obs.manifest import SessionManifest

    loaded = SessionManifest.load(out / "manifest.json")
    assert [r.backend for r in loaded.runs] == ["batch", "reference"]
