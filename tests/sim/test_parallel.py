"""Tests for the parallel execution layer: executor, factories, failures.

The failure-path contract matters most: a worker exception must surface
in the parent with its original type and the failing task's label (seed,
sweep-cell parameters), never as a bare pool error.
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro.errors import (
    BandwidthExceeded,
    ConfigurationError,
    ParallelExecutionError,
    SimulationDiverged,
)
from repro.network.adversaries import RandomConnectedAdversary
from repro.protocols.cflood import CFloodConservativeNode, cflood_factory
from repro.sim.config import RunConfig
from repro.sim.factories import BoundNode, Constant, NodeSet
from repro.sim.parallel import (
    WORKERS_ENV,
    ParallelExecutor,
    ensure_picklable,
    resolve_workers,
)
from repro.sim.runner import replicate


# ---- module-level task functions (must be importable from workers) ----

def _square(x):
    return x * x


def _raise_diverged(seed):
    raise SimulationDiverged(f"states disagree at round 3 (seed {seed})")


def _raise_bandwidth(seed):
    # multi-argument constructor: cannot be rebuilt as cls(message)
    raise BandwidthExceeded(bits=99, budget=24, sender=1, round_=2)


def _workers_inside_worker(_):
    # resolve_workers must report 0 inside a pool worker, whatever the
    # argument or environment says — parallelism never nests
    return resolve_workers(8)


def _make_nodes_n8():
    fac = cflood_factory(0, num_nodes=8)
    return {u: fac(u) for u in range(8)}


def _make_adversary_n8():
    return RandomConnectedAdversary(range(8), seed=5)


class TestResolveWorkers:
    def test_default_is_inline(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers() == 0
        assert resolve_workers(None) == 0

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "7")
        assert resolve_workers(3) == 3
        assert resolve_workers(0) == 0

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "2")
        assert resolve_workers() == 2
        monkeypatch.setenv(WORKERS_ENV, "")
        assert resolve_workers() == 0

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "many")
        with pytest.raises(ConfigurationError, match="REPRO_WORKERS"):
            resolve_workers()

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError, match=">= 0"):
            resolve_workers(-1)


class TestParallelExecutor:
    def test_inline_mode(self):
        out = ParallelExecutor(0).map(_square, [(i,) for i in range(6)])
        assert out == [0, 1, 4, 9, 16, 25]

    def test_pool_mode_preserves_input_order(self):
        out = ParallelExecutor(2).map(_square, [(i,) for i in range(20)])
        assert out == [i * i for i in range(20)]

    def test_label_count_mismatch(self):
        with pytest.raises(ConfigurationError, match="labels"):
            ParallelExecutor(0).map(_square, [(1,)], labels=["a", "b"])

    def test_no_nested_pools(self):
        assert ParallelExecutor(2).map(_workers_inside_worker, [(0,), (1,)]) == [0, 0]

    def test_worker_exception_surfaces_type_and_label(self):
        with pytest.raises(SimulationDiverged) as exc_info:
            ParallelExecutor(2).map(
                _raise_diverged, [(7,)], labels=["seed=7"]
            )
        assert "seed=7" in str(exc_info.value)
        assert "states disagree" in str(exc_info.value)
        assert exc_info.value.worker_label == "seed=7"
        assert "SimulationDiverged" in exc_info.value.worker_traceback

    def test_unreconstructible_exception_falls_back(self):
        # BandwidthExceeded needs 4 constructor args; the parent raises
        # ParallelExecutionError naming the original type and the label
        with pytest.raises(ParallelExecutionError, match="BandwidthExceeded") as ei:
            ParallelExecutor(2).map(_raise_bandwidth, [(1,)], labels=["seed=1"])
        assert "seed=1" in str(ei.value)

    def test_ensure_picklable(self):
        assert ensure_picklable(fn=_square) is None
        assert ensure_picklable(fn=lambda: 1) == "fn"
        assert ensure_picklable(a=_square, b=lambda: 1) == "b"


class TestReplicateParallel:
    def test_failure_names_the_seed(self):
        # seed 2's run diverges... simulate by a node factory that explodes
        with pytest.raises(SimulationDiverged) as ei:
            ParallelExecutor(2).map(
                _raise_diverged, [(1,), (2,)], labels=["seed=1", "seed=2"]
            )
        assert "seed=1" in str(ei.value)  # first failing task in input order

    def test_lambda_factories_fall_back_inline(self):
        with pytest.warns(UserWarning, match="cannot be pickled"):
            summary = replicate(
                lambda: {u: CFloodConservativeNode(u, 0, num_nodes=4) for u in range(4)},
                lambda: RandomConnectedAdversary(range(4), seed=1),
                seeds=[1, 2],
                config=RunConfig(max_rounds=50, workers=2),
            )
        assert summary.num_runs == 2
        assert all(r.terminated for r in summary.runs)

    def test_picklable_factories_do_not_warn(self, recwarn):
        summary = replicate(
            _make_nodes_n8,
            _make_adversary_n8,
            seeds=[1, 2],
            config=RunConfig(max_rounds=200, workers=2),
        )
        assert summary.num_runs == 2
        assert not [w for w in recwarn if "pickled" in str(w.message)]


class TestFactories:
    def test_bound_node_builds_and_pickles(self):
        fac = BoundNode(CFloodConservativeNode, source=0, num_nodes=8)
        node = fac(3)
        assert node.uid == 3 and node.source == 0
        clone = pickle.loads(pickle.dumps(fac))
        assert clone == fac
        assert clone(3).d_param == node.d_param

    def test_cflood_factory_is_picklable(self):
        fac = cflood_factory(0, d_param=3)
        clone = pickle.loads(pickle.dumps(fac))
        assert clone == fac and clone(1).d_param == 3

    def test_node_set(self):
        default = BoundNode(CFloodConservativeNode, source=0, num_nodes=4)
        ns = NodeSet(range(4), default)
        nodes = ns()
        assert sorted(nodes) == [0, 1, 2, 3]
        assert all(nodes[u].uid == u for u in nodes)
        assert pickle.loads(pickle.dumps(ns)) == ns

    def test_node_set_overrides(self):
        default = BoundNode(CFloodConservativeNode, source=0, num_nodes=4)
        special = BoundNode(CFloodConservativeNode, source=1, num_nodes=4)
        ns = NodeSet(range(4), default, overrides={1: special})
        nodes = ns()
        assert nodes[1].source == 1 and nodes[0].source == 0

    def test_constant(self):
        adv = RandomConnectedAdversary(range(4), seed=9)
        c = Constant(adv)
        assert c() is adv
        clone = pickle.loads(pickle.dumps(c))
        assert clone().seed == adv.seed
