"""Tests for the deterministic coin streams."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.sim.coins import CoinSource


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = CoinSource(7).coins(3, 5)
        b = CoinSource(7).coins(3, 5)
        assert [a.uniform() for _ in range(10)] == [b.uniform() for _ in range(10)]

    def test_distinct_nodes_distinct_streams(self):
        a = CoinSource(7).coins(3, 5)
        b = CoinSource(7).coins(4, 5)
        assert [a.uniform() for _ in range(5)] != [b.uniform() for _ in range(5)]

    def test_distinct_rounds_distinct_streams(self):
        a = CoinSource(7).coins(3, 5)
        b = CoinSource(7).coins(3, 6)
        assert [a.uniform() for _ in range(5)] != [b.uniform() for _ in range(5)]

    def test_distinct_seeds_distinct_streams(self):
        a = CoinSource(7).coins(3, 5)
        b = CoinSource(8).coins(3, 5)
        assert [a.uniform() for _ in range(5)] != [b.uniform() for _ in range(5)]

    def test_fork_independent(self):
        src = CoinSource(7)
        assert src.fork(1).seed != src.seed
        assert src.fork(1).seed == src.fork(1).seed
        assert src.fork(1).seed != src.fork(2).seed


class TestDistributions:
    @given(st.integers(0, 2**32), st.integers(1, 1000), st.integers(1, 1000))
    def test_uniform_in_range(self, seed, node, rnd):
        c = CoinSource(seed).coins(node, rnd)
        for _ in range(5):
            assert 0.0 <= c.uniform() < 1.0

    @given(st.integers(0, 2**32))
    def test_exponential_positive(self, seed):
        c = CoinSource(seed).coins(1, 1)
        for _ in range(5):
            assert c.exponential(1.0) > 0.0

    @given(st.integers(0, 2**32), st.integers(2, 100))
    def test_randint_in_range(self, seed, n):
        c = CoinSource(seed).coins(1, 1)
        for _ in range(5):
            assert 0 <= c.randint(n) < n

    def test_bit_bias(self):
        c = CoinSource(123).coins(1, 1)
        heads = sum(c.bit(0.8) for _ in range(2000))
        assert 1450 <= heads <= 1750  # ~0.8 of 2000 with slack

    def test_exponential_mean(self):
        c = CoinSource(5).coins(2, 2)
        draws = [c.exponential(4.0) for _ in range(4000)]
        mean = sum(draws) / len(draws)
        assert 0.2 < mean < 0.3  # Exp(4) has mean 0.25
