"""Differential fuzzing: every backend variant is bit-identical.

Drives ``tools/fuzz_backends.py`` — Hypothesis draws random (protocol,
adversary, N, seeds, rounds) cells and every variant of the execution
stack (reference, batch, batch+vector, forced-sparse, legacy scan) must
agree on fingerprints, bit totals, rounds, and outputs.  A planted
divergence confirms the lockstep diagnosis names the exact round and
stage, so a real future divergence arrives pre-bisected.
"""

from __future__ import annotations

import importlib.util
import pathlib
import sys

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

_TOOL = pathlib.Path(__file__).resolve().parents[2] / "tools" / "fuzz_backends.py"


def _load_tool():
    spec = importlib.util.spec_from_file_location("fuzz_backends", _TOOL)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("fuzz_backends", module)
    spec.loader.exec_module(module)
    return module


fb = _load_tool()


# -- cell strategy ----------------------------------------------------------

def _cells():
    """Random cells mirroring fuzz_backends.random_cell, Hypothesis-driven."""

    @st.composite
    def build(draw):
        protocol = draw(st.sampled_from(fb.PROTOCOLS))
        pool = fb.OBLIVIOUS_ADVERSARIES + (
            ("blocking-gossip",) if protocol == "gossip" else ("blocking-flood",)
        )
        adversary = draw(st.sampled_from(pool))
        n = draw(st.integers(min_value=3, max_value=10))
        adv_seed = draw(st.integers(min_value=0, max_value=2 ** 16))
        k = draw(st.integers(min_value=1, max_value=3))
        start = draw(st.integers(min_value=0, max_value=2 ** 20))
        max_rounds = draw(st.integers(min_value=4, max_value=3 * n))
        return fb.Cell(
            name=f"hyp/{protocol}/{adversary}/n{n}",
            protocol=protocol,
            adversary=adversary,
            n=n,
            adv_seed=adv_seed,
            seeds=tuple(range(start, start + k)),
            max_rounds=max_rounds,
        )

    return build()


@settings(
    deadline=None,
    max_examples=15,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(cell=_cells())
def test_all_variants_bit_identical(cell):
    problems = fb.compare_cell(cell)
    assert problems == [], "\n".join(problems)


def test_fixed_corpus_smoke():
    """A deterministic handful of cells (fuzz CLI's own RNG), PR-sized."""
    problems = fb.fuzz(4, rng_seed=2026, max_nodes=12)
    assert problems == [], "\n".join(problems)


# -- the divergence oracle --------------------------------------------------

_CLEAN_CELL = fb.Cell(
    name="diag/clean",
    protocol="gossip",
    adversary="t-interval",
    n=8,
    adv_seed=5,
    seeds=(3,),
    max_rounds=12,
)


def test_diagnose_clean_cell_is_none():
    assert fb.diagnose_divergence(_CLEAN_CELL, 3, "batch") is None
    assert fb.diagnose_divergence(_CLEAN_CELL, 3, "batch-vector") is None


def test_diagnose_names_round_and_stage(monkeypatch):
    """A planted batch-only topology corruption is located exactly.

    Dropping one committed edge in round 3 of the batch engine's
    adversary stage must be reported as a round-3 ``adversary``-stage
    divergence — not merely as "fingerprints differ".
    """
    from repro.sim.batch import BatchEngine

    original = BatchEngine._stage_adversary

    def corrupted(self, state):
        original(self, state)
        if state.round == 3 and state.edges:
            state.edges = frozenset(sorted(state.edges)[1:])

    monkeypatch.setattr(BatchEngine, "_stage_adversary", corrupted)
    cell = fb.Cell(
        name="diag/planted",
        protocol="gossip",
        adversary="static-line",
        n=7,
        adv_seed=0,
        seeds=(1,),
        max_rounds=10,
    )
    where = fb.diagnose_divergence(cell, 1, "batch")
    assert where is not None
    assert "round 3" in where
    assert "'adversary'" in where


def test_compare_cell_reports_diagnosis(monkeypatch):
    """compare_cell folds the round+stage location into its report."""
    from repro.sim.batch import BatchEngine

    original = BatchEngine._stage_adversary

    def corrupted(self, state):
        original(self, state)
        if state.round == 2 and state.edges:
            state.edges = frozenset(sorted(state.edges)[1:])

    monkeypatch.setattr(BatchEngine, "_stage_adversary", corrupted)
    cell = fb.Cell(
        name="diag/report",
        protocol="gossip",
        adversary="static-line",
        n=6,
        adv_seed=0,
        seeds=(2,),
        max_rounds=8,
    )
    problems = fb.compare_cell(cell, variants=("reference", "batch"))
    assert problems, "planted divergence must be detected"
    assert any("round 2" in p and "'adversary'" in p for p in problems)


# -- CLI --------------------------------------------------------------------

def test_cli_smoke(capsys):
    assert fb.main(["--iterations", "2", "--seed", "11", "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "all bit-identical" in out


def test_cli_unknown_variant_rejected():
    with pytest.raises(ValueError, match="unknown variant"):
        fb.run_cell(_CLEAN_CELL, "turbo")
