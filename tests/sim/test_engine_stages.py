"""The round-staged protocol interface of both engines.

Every round executes as the same fixed sequence of stages
(``ROUND_STAGES``), and ``step_stages()`` exposes them one by one so an
adaptive adversary's decision can be interposed between vectorized
stages.  These tests pin the interface itself: stage ordering, the
exact per-stage view an adversary observes, partial-consumption
semantics, and error-path parity between the reference and batch
engines.
"""

from __future__ import annotations

import pytest

from repro.errors import (
    BandwidthExceeded,
    DisconnectedTopology,
    InvalidAction,
    ModelViolation,
)
from repro.faults.check import trace_fingerprint
from repro.network.adversaries import Adversary, FunctionAdversary, StaticAdversary
from repro.network.generators import line_edges
from repro.obs.instrumentation import PHASES, Instrumentation
from repro.protocols.flooding import TokenFloodNode
from repro.sim import ROUND_STAGES, StageEvent
from repro.sim.actions import Receive, Send
from repro.sim.batch import BatchEngine, ScheduleTape
from repro.sim.coins import CoinSource
from repro.sim.engine import SynchronousEngine
from repro.sim.node import ProtocolNode

IDS = (0, 1, 2, 3)


def _nodes():
    return {u: TokenFloodNode(u, source=0) for u in IDS}


def _line_adv():
    return StaticAdversary(list(IDS), line_edges(list(IDS)))


def _engines(make_adv, **kwargs):
    """A (reference, batch) engine pair over the same fresh cell."""
    ref = SynchronousEngine(_nodes(), make_adv(), CoinSource(5), **kwargs)
    bat = BatchEngine(_nodes(), make_adv(), CoinSource(5), **kwargs)
    return ref, bat


class RecordingAdversary(Adversary):
    """Adaptive stub: records exactly what each round's view exposes."""

    def __init__(self, node_ids):
        super().__init__(node_ids)
        self.observed = []

    def edges(self, round_, view):
        self.observed.append(
            {
                "round": round_,
                "view_round": view.round,
                "actions": dict(view.actions),
                "node_ids": sorted(view.nodes),
                "trace_rounds": view.trace.rounds,
                "receiving": [u for u in sorted(view.nodes) if view.is_receiving(u)],
                "sending": [u for u in sorted(view.nodes) if view.is_sending(u)],
            }
        )
        return line_edges(sorted(view.nodes))


class TestStageOrdering:
    def test_round_stages_matches_instrumentation_phases(self):
        assert ROUND_STAGES == PHASES

    @pytest.mark.parametrize("engine_cls", [SynchronousEngine, BatchEngine])
    def test_both_engines_declare_the_same_stages(self, engine_cls):
        eng = engine_cls(_nodes(), _line_adv(), CoinSource(5))
        assert tuple(name for name, _ in eng._stages) == ROUND_STAGES

    @pytest.mark.parametrize("engine_cls", [SynchronousEngine, BatchEngine])
    def test_step_stages_yields_in_order_with_growing_state(self, engine_cls):
        eng = engine_cls(_nodes(), _line_adv(), CoinSource(5))
        events = list(eng.step_stages())
        assert [e.stage for e in events] == list(ROUND_STAGES)
        assert all(isinstance(e, StageEvent) for e in events)
        assert all(e.round == 1 for e in events)
        by_stage = {e.stage: e for e in events}
        # edges exist from the adversary stage on, never before
        assert by_stage["actions"].edges is None
        assert by_stage["adversary"].edges == frozenset(line_edges(list(IDS)))
        assert by_stage["validation"].edges == by_stage["adversary"].edges
        # the round record exists from the delivery stage on, never before
        for stage in ("actions", "adversary", "validation"):
            assert by_stage[stage].record is None
        assert by_stage["delivery"].record is not None
        assert by_stage["delivery"].record.round == 1
        assert by_stage["termination"].record is by_stage["delivery"].record

    def test_reference_engine_exposes_committed_actions(self):
        eng = SynchronousEngine(_nodes(), _line_adv(), CoinSource(5))
        events = {e.stage: e for e in eng.step_stages()}
        actions = events["actions"].actions
        assert sorted(actions) == list(IDS)
        assert isinstance(actions[0], Send)  # the informed source sends
        assert all(isinstance(actions[u], Receive) for u in IDS[1:])

    @pytest.mark.parametrize("engine_cls", [SynchronousEngine, BatchEngine])
    def test_partial_consumption_leaves_engine_mid_round(self, engine_cls):
        eng = engine_cls(_nodes(), _line_adv(), CoinSource(5))
        gen = eng.step_stages()
        next(gen)  # actions only
        assert eng.round == 1
        assert eng.trace.rounds == 0  # no record appended yet
        gen.close()
        # a fresh full round still works and appends the next record
        list(eng.step_stages())
        assert eng.round == 2
        assert eng.trace.rounds == 1

    @pytest.mark.parametrize("engine_cls", [SynchronousEngine, BatchEngine])
    def test_step_and_step_stages_produce_identical_traces(self, engine_cls):
        adv = _line_adv
        one = engine_cls(_nodes(), adv(), CoinSource(5))
        two = engine_cls(_nodes(), adv(), CoinSource(5))
        for _ in range(6):
            one.step()
            list(two.step_stages())
        assert trace_fingerprint(one.trace) == trace_fingerprint(two.trace)

    @pytest.mark.parametrize("engine_cls", [SynchronousEngine, BatchEngine])
    def test_instrumentation_observes_every_stage(self, engine_cls):
        instr = Instrumentation()
        eng = engine_cls(_nodes(), _line_adv(), CoinSource(5), instrumentation=instr)
        list(eng.step_stages())
        eng.step()
        assert instr.rounds == 2
        for phase in ROUND_STAGES:
            assert instr.phase_seconds[phase] >= 0.0


class TestAdversaryView:
    @pytest.mark.parametrize("engine_cls", [SynchronousEngine, BatchEngine])
    def test_recording_stub_sees_the_documented_view(self, engine_cls):
        adv = RecordingAdversary(IDS)
        eng = engine_cls(_nodes(), adv, CoinSource(5))
        for _ in range(3):
            eng.step()
        assert [o["round"] for o in adv.observed] == [1, 2, 3]
        for r, obs in enumerate(adv.observed, start=1):
            assert obs["view_round"] == r
            assert obs["node_ids"] == list(IDS)
            # the view carries the trace *before* this round's record
            assert obs["trace_rounds"] == r - 1
            # every node has committed exactly one action
            assert sorted(obs["actions"]) == list(IDS)
            assert sorted(obs["receiving"] + obs["sending"]) == list(IDS)
        # flooding over a line: the source always sends, and the set of
        # senders (informed nodes) grows by one per round
        assert [len(o["sending"]) for o in adv.observed] == [1, 2, 3]

    def test_both_engines_show_the_stub_identical_views(self):
        ref_adv = RecordingAdversary(IDS)
        bat_adv = RecordingAdversary(IDS)
        ref = SynchronousEngine(_nodes(), ref_adv, CoinSource(5))
        bat = BatchEngine(_nodes(), bat_adv, CoinSource(5))
        for _ in range(4):
            ref.step()
            bat.step()
        for ro, bo in zip(ref_adv.observed, bat_adv.observed):
            assert ro["round"] == bo["round"]
            assert ro["actions"] == bo["actions"]
            assert ro["receiving"] == bo["receiving"]
            assert ro["sending"] == bo["sending"]
            assert ro["trace_rounds"] == bo["trace_rounds"]


class _BadActionNode(ProtocolNode):
    def action(self, round_, coins):
        return "neither-send-nor-receive" if round_ == 2 else Receive()

    def on_messages(self, round_, payloads):
        pass


class _ChattyNode(ProtocolNode):
    def action(self, round_, coins):
        return Send(tuple(range(1000)))

    def on_messages(self, round_, payloads):
        pass


def _raise_parity(make_nodes, make_adv, exc_type):
    """Both engines raise the same error, message, and partial trace."""
    ref = SynchronousEngine(make_nodes(), make_adv(), CoinSource(5))
    bat = BatchEngine(make_nodes(), make_adv(), CoinSource(5))
    with pytest.raises(exc_type) as ref_exc:
        ref.run(10)
    with pytest.raises(exc_type) as bat_exc:
        bat.run(10)
    assert str(ref_exc.value) == str(bat_exc.value)
    assert ref.round == bat.round
    assert trace_fingerprint(ref.trace) == trace_fingerprint(bat.trace)
    return str(ref_exc.value)


class TestErrorPathParity:
    def test_invalid_action(self):
        def make_nodes():
            nodes = _nodes()
            nodes[2] = _BadActionNode(2)
            return nodes

        msg = _raise_parity(make_nodes, _line_adv, InvalidAction)
        assert "node 2" in msg and "round 2" in msg

    def test_invalid_action_reports_first_bad_uid_in_sorted_order(self):
        def make_nodes():
            nodes = _nodes()
            nodes[3] = _BadActionNode(3)
            nodes[1] = _BadActionNode(1)
            return nodes

        msg = _raise_parity(make_nodes, _line_adv, InvalidAction)
        assert "node 1" in msg

    def test_disconnected_topology(self):
        def edges(round_, view):
            if round_ == 3:
                return [(0, 1), (2, 3)]  # two components
            return line_edges(list(IDS))

        make_adv = lambda: FunctionAdversary(list(IDS), edges)
        msg = _raise_parity(_nodes, make_adv, DisconnectedTopology)
        assert "round 3" in msg

    def test_model_violation_foreign_edge(self):
        def edges(round_, view):
            if round_ == 2:
                return [(0, 99)] + list(line_edges(list(IDS)))
            return line_edges(list(IDS))

        make_adv = lambda: FunctionAdversary(list(IDS), edges)
        msg = _raise_parity(_nodes, make_adv, ModelViolation)
        assert "(0, 99)" in msg

    def test_model_violation_self_loop(self):
        def edges(round_, view):
            if round_ == 2:
                return [(1, 1)] + list(line_edges(list(IDS)))
            return line_edges(list(IDS))

        make_adv = lambda: FunctionAdversary(list(IDS), edges)
        msg = _raise_parity(_nodes, make_adv, ModelViolation)
        assert "self-loop" in msg

    def test_bandwidth_exceeded(self):
        def make_nodes():
            nodes = _nodes()
            nodes[1] = _ChattyNode(1)
            return nodes

        _raise_parity(make_nodes, _line_adv, BandwidthExceeded)

    @pytest.mark.parametrize("engine_cls", [SynchronousEngine, BatchEngine])
    def test_error_surfaces_at_its_stage_in_step_stages(self, engine_cls):
        def edges(round_, view):
            if round_ == 1:
                return [(0, 1), (2, 3)]
            return line_edges(list(IDS))

        eng = engine_cls(_nodes(), FunctionAdversary(list(IDS), edges), CoinSource(5))
        gen = eng.step_stages()
        seen = []
        with pytest.raises(DisconnectedTopology):
            for event in gen:
                seen.append(event.stage)
        # actions and the adversary decision completed; validation raised
        assert seen == ["actions", "adversary"]
