"""Property test: parallel replicate ≡ sequential replicate, always.

Hypothesis draws random (protocol, adversary, seed list, worker count)
combinations and asserts the parallel run is run-for-run identical to
the sequential one — rounds, total bits, outputs — and that the merged
metrics registry agrees with the sequential shared-registry aggregate on
every deterministic (non-timing) metric.

The pool is expensive to spin up, so ``max_examples`` is deliberately
small; the deadline is disabled for the same reason.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.network.adversaries import (
    OverlappingStarsAdversary,
    RandomConnectedAdversary,
    ShiftingLineAdversary,
    StaticAdversary,
)
from repro.network.generators import line_edges
from repro.obs.metrics import MetricsRegistry
from repro.protocols.cflood import cflood_factory
from repro.protocols.flooding import TokenFloodNode
from repro.sim.config import RunConfig
from repro.sim.factories import BoundNode, Constant, NodeSet
from repro.sim.runner import replicate


def _make_adversary(kind: str, ids, seed: int):
    if kind == "random":
        return RandomConnectedAdversary(ids, seed=seed)
    if kind == "stars":
        return OverlappingStarsAdversary(list(ids))
    if kind == "shifting-line":
        return ShiftingLineAdversary(list(ids), seed=seed)
    return StaticAdversary(list(ids), line_edges(list(ids)))


def _make_node_factory(kind: str, ids):
    n = len(ids)
    src = ids[0]
    if kind == "cflood-conservative":
        return NodeSet(ids, cflood_factory(src, num_nodes=n))
    if kind == "cflood-known-d":
        return NodeSet(ids, cflood_factory(src, d_param=max(2, n // 2)))
    return NodeSet(ids, BoundNode(TokenFloodNode, source=src))


@st.composite
def _cases(draw):
    n = draw(st.integers(min_value=4, max_value=10))
    ids = tuple(range(n))
    protocol = draw(
        st.sampled_from(["cflood-conservative", "cflood-known-d", "token-flood"])
    )
    adversary = draw(
        st.sampled_from(["random", "stars", "shifting-line", "static-line"])
    )
    adv_seed = draw(st.integers(min_value=0, max_value=2**16))
    seeds = draw(
        st.lists(st.integers(min_value=0, max_value=2**31), min_size=1, max_size=4)
    )
    workers = draw(st.integers(min_value=1, max_value=3))
    return ids, protocol, adversary, adv_seed, seeds, workers


@given(_cases())
@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_parallel_replicate_equals_sequential(case):
    ids, protocol, adversary, adv_seed, seeds, workers = case
    make_nodes = _make_node_factory(protocol, ids)
    make_adv = Constant(_make_adversary(adversary, ids, adv_seed))
    max_rounds = 12 * len(ids)

    seq_registry = MetricsRegistry()
    par_registry = MetricsRegistry()
    seq = replicate(
        make_nodes, make_adv, seeds,
        RunConfig(max_rounds=max_rounds, instrument=True,
                  registry=seq_registry, workers=0),
    )
    par = replicate(
        make_nodes, make_adv, seeds,
        RunConfig(max_rounds=max_rounds, instrument=True,
                  registry=par_registry, workers=workers),
    )

    assert [r.rounds for r in seq.runs] == [r.rounds for r in par.runs]
    assert [r.terminated for r in seq.runs] == [r.terminated for r in par.runs]
    assert [r.total_bits for r in seq.runs] == [r.total_bits for r in par.runs]
    assert [r.outputs for r in seq.runs] == [r.outputs for r in par.runs]
    assert [r.trace.edge_schedule() for r in seq.runs] == [
        r.trace.edge_schedule() for r in par.runs
    ]

    # merged counters equal the sequential shared-registry aggregate;
    # histogram *counts* (not their timing-valued sums) agree too
    seq_snap = seq_registry.snapshot()
    par_snap = par_registry.snapshot()
    assert set(seq_snap) == set(par_snap)
    for key, metric in seq_snap.items():
        if metric["type"] == "counter":
            assert par_snap[key]["value"] == metric["value"], key
        elif metric["type"] == "histogram":
            assert par_snap[key]["count"] == metric["count"], key
