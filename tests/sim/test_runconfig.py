"""RunConfig facade: round-trips, backend resolution, the removed shim.

The facade's contract is twofold: (a) a ``RunConfig`` threads identically
through ``run_protocol``/``replicate``/``cartesian_sweep``, and (b) the
pre-RunConfig call styles — individual values positionally or by keyword,
which deprecation-warned for four PRs — are now *removed*: they raise
:class:`~repro.errors.ConfigurationError` naming the exact
``config=RunConfig(...)`` replacement.  Both halves are pinned here.
"""

from __future__ import annotations

import warnings

import pytest

from repro.errors import ConfigurationError
from repro.network.adversaries import StaticAdversary
from repro.network.generators import line_edges
from repro.protocols.flooding import TokenFloodNode
from repro.sim import (
    BACKEND_ENV,
    BACKENDS,
    RunConfig,
    replicate,
    resolve_backend,
    run_protocol,
)
from repro.analysis.sweep import cartesian_sweep

IDS = tuple(range(6))


def _make_nodes():
    return {i: TokenFloodNode(i, source=0) for i in IDS}


def _make_adv():
    return StaticAdversary(IDS, line_edges(list(IDS)))


# -- the value object ------------------------------------------------------


class TestRunConfig:
    def test_round_trip_as_dict(self):
        cfg = RunConfig(seed=7, max_rounds=50, bandwidth_factor=48,
                        check_connected=False, backend="batch", workers=2)
        assert RunConfig.from_dict(cfg.as_dict()) == cfg

    def test_from_dict_ignores_unknown_keys(self):
        cfg = RunConfig.from_dict({"seed": 1, "max_rounds": 2, "novel_field": True})
        assert cfg == RunConfig(seed=1, max_rounds=2)

    def test_evolve_replaces_fields(self):
        base = RunConfig(seed=1, max_rounds=10)
        assert base.evolve(seed=2) == RunConfig(seed=2, max_rounds=10)
        assert base.seed == 1  # frozen original untouched

    def test_default_bandwidth_factor_sourced_from_messages(self):
        from repro.sim.messages import DEFAULT_BANDWIDTH_FACTOR

        assert RunConfig().bandwidth_factor == DEFAULT_BANDWIDTH_FACTOR

    def test_invalid_backend_rejected_at_construction(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            RunConfig(backend="vectorized")

    def test_resolved_backend_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "batch")
        assert RunConfig(backend="reference").resolved_backend() == "reference"

    def test_resolved_backend_env_applies(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "batch")
        assert RunConfig().resolved_backend() == "batch"
        monkeypatch.delenv(BACKEND_ENV)
        assert RunConfig().resolved_backend() == "reference"

    def test_resolve_backend_rejects_bad_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "gpu")
        with pytest.raises(ConfigurationError, match="unknown backend"):
            resolve_backend(None)

    def test_backends_registry(self):
        assert BACKENDS == ("reference", "batch")


# -- the removed legacy call styles ----------------------------------------


class TestLegacyShim:
    def test_run_protocol_config_style_is_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run = run_protocol(
                _make_nodes, _make_adv, RunConfig(seed=3, max_rounds=30)
            )
        assert run.terminated

    def test_run_protocol_legacy_positional_raises_with_replacement(self):
        with pytest.raises(ConfigurationError, match="was.*removed") as exc:
            run_protocol(_make_nodes, _make_adv, 3, 30)
        # the error spells out the exact RunConfig replacement
        assert "run_protocol" in str(exc.value)
        assert "config=RunConfig(max_rounds=30, seed=3)" in str(exc.value)

    def test_run_protocol_legacy_keywords_raise_with_replacement(self):
        with pytest.raises(ConfigurationError, match="was.*removed") as exc:
            run_protocol(
                _make_nodes, _make_adv, seed=3, max_rounds=30, bandwidth_factor=48
            )
        assert (
            "config=RunConfig(bandwidth_factor=48, max_rounds=30, seed=3)"
            in str(exc.value)
        )

    def test_replicate_legacy_keywords_raise_with_replacement(self):
        with pytest.raises(ConfigurationError, match="was.*removed") as exc:
            replicate(_make_nodes, _make_adv, [1, 2], max_rounds=30)
        assert "replicate" in str(exc.value)
        assert "config=RunConfig(max_rounds=30)" in str(exc.value)

    def test_cartesian_sweep_legacy_workers_raises_with_replacement(self):
        def cell(a):
            return {"b": a + 1}

        with pytest.raises(ConfigurationError, match="was.*removed") as exc:
            cartesian_sweep({"a": [1, 2]}, cell, workers=0)
        assert "cartesian_sweep" in str(exc.value)
        assert "config=RunConfig(workers=0)" in str(exc.value)

    def test_config_plus_legacy_is_ambiguous(self):
        with pytest.raises(ConfigurationError, match="not both"):
            run_protocol(
                _make_nodes, _make_adv, RunConfig(seed=3), max_rounds=30
            )

    def test_unknown_keyword_raises_type_error(self):
        with pytest.raises(TypeError, match="unexpected keyword"):
            run_protocol(_make_nodes, _make_adv, seed=3, max_rounds=30, turbo=True)

    def test_duplicate_positional_and_keyword_raises(self):
        with pytest.raises(TypeError, match="multiple values"):
            run_protocol(_make_nodes, _make_adv, 3, seed=4, max_rounds=30)

    def test_too_many_positionals_raises(self):
        with pytest.raises(TypeError, match="at most"):
            run_protocol(_make_nodes, _make_adv, 3, 30, 24, True, False, None, 0, 99)


# -- threading through the drivers -----------------------------------------


class TestConfigThreading:
    def test_run_protocol_requires_seed_and_max_rounds(self):
        with pytest.raises(ConfigurationError):
            run_protocol(_make_nodes, _make_adv, RunConfig(max_rounds=30))
        with pytest.raises(ConfigurationError):
            run_protocol(_make_nodes, _make_adv, RunConfig(seed=3))

    def test_backend_recorded_on_runs(self):
        ref = run_protocol(
            _make_nodes, _make_adv, RunConfig(seed=3, max_rounds=30, backend="reference")
        )
        bat = run_protocol(
            _make_nodes, _make_adv, RunConfig(seed=3, max_rounds=30, backend="batch")
        )
        assert ref.backend == "reference"
        assert bat.backend == "batch"
        assert ref.outputs == bat.outputs

    def test_env_backend_applies_to_run_protocol(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "batch")
        run = run_protocol(_make_nodes, _make_adv, RunConfig(seed=3, max_rounds=30))
        assert run.backend == "batch"

    def test_replicate_backend_recorded(self):
        summary = replicate(
            _make_nodes, _make_adv, [1, 2, 3], RunConfig(max_rounds=30, backend="batch")
        )
        assert [r.backend for r in summary.runs] == ["batch"] * 3
