"""Determinism property tests: the bedrock of the reduction machinery.

Everything in this library assumes that a (protocol, adversary, seed)
triple replays bit-identically — the two-party simulation compares
executions across contexts, and the experiment numbers claim
reproducibility.  These tests pin that down with hypothesis.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.adversaries import (
    OverlappingStarsAdversary,
    RandomConnectedAdversary,
    ShiftingLineAdversary,
)
from repro.protocols.flooding import GossipMaxNode
from repro.protocols.leader_election import LeaderElectNode
from repro.sim.coins import CoinSource
from repro.sim.engine import SynchronousEngine


def run_gossip(n, adv_cls, adv_seed, seed, rounds):
    ids = list(range(1, n + 1))
    adv = adv_cls(ids, seed=adv_seed) if adv_cls is not OverlappingStarsAdversary else adv_cls(ids)
    nodes = {u: GossipMaxNode(u) for u in ids}
    eng = SynchronousEngine(nodes, adv, CoinSource(seed))
    eng.run(rounds, stop_on_termination=False)
    return eng.trace, nodes


class TestTraceDeterminism:
    @given(
        n=st.integers(3, 12),
        seed=st.integers(0, 2**32),
        adv_seed=st.integers(0, 100),
    )
    @settings(max_examples=15)
    def test_same_seed_identical_traces(self, n, seed, adv_seed):
        t1, n1 = run_gossip(n, RandomConnectedAdversary, adv_seed, seed, 12)
        t2, n2 = run_gossip(n, RandomConnectedAdversary, adv_seed, seed, 12)
        for r1, r2 in zip(t1.records, t2.records):
            assert r1.edges == r2.edges
            assert r1.sends == r2.sends
            assert r1.receivers == r2.receivers
        assert {u: x.best for u, x in n1.items()} == {u: x.best for u, x in n2.items()}

    @given(seed=st.integers(0, 2**32))
    @settings(max_examples=10)
    def test_different_seeds_different_behaviour(self, seed):
        t1, _ = run_gossip(8, ShiftingLineAdversary, 1, seed, 10)
        t2, _ = run_gossip(8, ShiftingLineAdversary, 1, seed + 1, 10)
        # the coin streams differ, so the send/receive pattern differs
        assert any(
            r1.sends.keys() != r2.sends.keys() for r1, r2 in zip(t1.records, t2.records)
        )

    def test_leader_election_replays(self):
        ids = list(range(1, 9))
        results = []
        for _ in range(2):
            nodes = {u: LeaderElectNode(u, n_estimate=8) for u in ids}
            eng = SynchronousEngine(nodes, OverlappingStarsAdversary(ids), CoinSource(9))
            trace = eng.run(30_000)
            results.append((trace.termination_round, dict(trace.outputs)))
        assert results[0] == results[1]


class TestBitAccountingInvariants:
    @given(seed=st.integers(0, 2**32))
    @settings(max_examples=10)
    def test_bits_match_sends(self, seed):
        trace, _ = run_gossip(8, RandomConnectedAdversary, 2, seed, 10)
        for rec in trace.records:
            assert set(rec.bits) == set(rec.sends)
            assert all(b > 0 for b in rec.bits.values())
            # every node acted exactly once: senders + receivers = all
            assert len(rec.sends) + len(rec.receivers) == trace.num_nodes

    @given(seed=st.integers(0, 2**32))
    @settings(max_examples=10)
    def test_delivered_counts_bounded_by_senders(self, seed):
        trace, _ = run_gossip(8, RandomConnectedAdversary, 2, seed, 10)
        for rec in trace.records:
            for uid, count in rec.delivered.items():
                assert 0 <= count <= len(rec.sends)
