"""Delivery-order canonicalization: payloads sort by value encoding.

Regression for the ``sort(key=repr)`` bug: objects without a canonical
``__repr__`` (the default includes the memory address) made the
receivers' payload order depend on allocation addresses — deterministic
within a process by accident, different across processes, which breaks
the bit-identical re-execution the Lemma-5 simulation requires.  The
engine now sorts by :func:`repro._util.canonical_encoding`, the stable
byte encoding whose sizes :func:`bit_size` charges.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro._util import bit_size, canonical_encoding
from repro.errors import ConfigurationError
from repro.network.adversaries import StaticAdversary
from repro.network.generators import star_edges
from repro.sim.actions import Receive, Send
from repro.sim.coins import CoinSource
from repro.sim.engine import SynchronousEngine
from repro.sim.node import ProtocolNode


class OpaquePayload:
    """A payload whose default repr embeds ``id(self)`` — the bug trigger."""

    def __init__(self, rank: int):
        self.rank = rank

    def payload_bits(self) -> int:
        return 8

    def payload_encoding(self) -> bytes:
        return bytes([self.rank])


class SendRanked(ProtocolNode):
    def __init__(self, uid: int, rank: int):
        super().__init__(uid)
        self.rank = rank

    def action(self, round_, coins):
        return Send(OpaquePayload(self.rank))

    def on_messages(self, round_, payloads):
        pass


class Collector(ProtocolNode):
    def __init__(self, uid: int):
        super().__init__(uid)
        self.seen = []

    def action(self, round_, coins):
        return Receive()

    def on_messages(self, round_, payloads):
        self.seen.append([getattr(p, "rank", p) for p in payloads])


def run_star(ranks_by_uid):
    """Hub 0 receives from leaves 1..k, each sending an OpaquePayload."""
    ids = [0] + sorted(ranks_by_uid)
    nodes = {0: Collector(0)}
    nodes.update({u: SendRanked(u, r) for u, r in ranks_by_uid.items()})
    adv = StaticAdversary(ids, star_edges(0, ids[1:]))
    eng = SynchronousEngine(nodes, adv, CoinSource(1))
    eng.step()
    return nodes[0].seen[0]


class TestEngineDeliveryOrder:
    def test_opaque_payloads_sorted_by_value_not_address(self):
        # whatever the allocation order, delivery follows the encoding
        order_a = run_star({1: 30, 2: 10, 3: 20})
        order_b = run_star({1: 10, 2: 20, 3: 30})
        assert order_a == order_b == [10, 20, 30]

    def test_int_payloads_sorted_numerically(self):
        class SendInt(ProtocolNode):
            def __init__(self, uid, value):
                super().__init__(uid)
                self.value = value

            def action(self, round_, coins):
                return Send(self.value)

            def on_messages(self, round_, payloads):
                pass

        ids = [0, 1, 2, 3]
        nodes = {0: Collector(0), 1: SendInt(1, 10), 2: SendInt(2, 2), 3: SendInt(3, 9)}
        adv = StaticAdversary(ids, star_edges(0, ids[1:]))
        eng = SynchronousEngine(nodes, adv, CoinSource(1))
        eng.step()
        got = nodes[0].seen[0]
        # repr-sorting would have produced the lexicographic ["10", "2", "9"]
        assert got == [(2), (9), (10)] or got == [2, 9, 10]


class TestCanonicalEncoding:
    def test_structurally_equal_objects_encode_equal(self):
        assert canonical_encoding(OpaquePayload(5)) == canonical_encoding(OpaquePayload(5))
        assert canonical_encoding(OpaquePayload(5)) != canonical_encoding(OpaquePayload(6))

    def test_type_distinctions(self):
        assert canonical_encoding(1) != canonical_encoding(True)
        assert canonical_encoding(0) != canonical_encoding(False)
        assert canonical_encoding(1) != canonical_encoding(1.0)
        assert canonical_encoding("1") != canonical_encoding(1)
        assert canonical_encoding((1,)) == canonical_encoding([1])  # same algebra as bit_size

    def test_unencodable_object_rejected(self):
        class NoHook:
            pass

        with pytest.raises(ConfigurationError):
            canonical_encoding(NoHook())

    @given(
        st.recursive(
            st.one_of(
                st.none(),
                st.booleans(),
                st.integers(-(2**70), 2**70),
                st.floats(allow_nan=False),
                st.text(max_size=8),
                st.binary(max_size=8),
            ),
            lambda c: st.one_of(st.tuples(c, c), st.lists(c, max_size=3)),
            max_leaves=6,
        )
    )
    def test_total_deterministic_over_payload_algebra(self, payload):
        enc = canonical_encoding(payload)
        assert isinstance(enc, bytes)
        assert enc == canonical_encoding(payload)
        bit_size(payload)  # same algebra: whatever bit_size charges, we encode
