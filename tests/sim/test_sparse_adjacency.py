"""Sparse adjacency edge cases: boundaries, isolation, tiny rounds.

The batch backend picks an adjacency representation per cell — dense
incidence up to ``DENSE_NODE_LIMIT`` nodes, packed-bitset rows or CSR
above it (density-dependent) — and the pick must never be observable:
every representation yields bit-identical traces.  These tests pin the
selection boundary exactly (N at the limit ±1), and drive the sparse
delivery kernels through their degenerate shapes: a node isolated for
several rounds then reconnected, rounds with a single live edge, and
empty rounds, all under ``check_connected=False`` so the model layer
does not mask the kernel behaviour.
"""

from __future__ import annotations

import pytest

from repro.faults.check import first_trace_divergence, trace_fingerprint
from repro.network.adversaries import (
    FunctionAdversary,
    RandomConnectedAdversary,
    StaticAdversary,
)
from repro.network.generators import line_edges
from repro.protocols.flooding import GossipMaxNode, TokenFloodNode
from repro.sim.batch import DENSE_NODE_LIMIT, ScheduleTape, build_engine
from repro.sim.coins import CoinSource
from repro.sim.engine import SynchronousEngine


def _run(make_nodes, make_adv, seed, rounds, *, reference=False, **kwargs):
    nodes = make_nodes()
    adversary = make_adv()
    if reference:
        engine = SynchronousEngine(
            nodes, adversary, CoinSource(seed),
            check_connected=kwargs.get("check_connected", True),
        )
    else:
        engine = build_engine(
            nodes, adversary, CoinSource(seed), backend="batch", **kwargs
        )
    engine.run(rounds)
    return engine


def _gossip(ids):
    return lambda: {u: GossipMaxNode(u) for u in ids}


def _flood(ids, src):
    return lambda: {u: TokenFloodNode(u, source=src) for u in ids}


# -- selection boundary ----------------------------------------------------


@pytest.mark.parametrize(
    "n,expected_dense",
    [
        (DENSE_NODE_LIMIT - 1, True),
        (DENSE_NODE_LIMIT, True),
        (DENSE_NODE_LIMIT + 1, False),
    ],
    ids=["limit-1", "limit", "limit+1"],
)
def test_dense_node_limit_boundary(n, expected_dense):
    """N <= DENSE_NODE_LIMIT stays dense; one more node goes sparse."""
    ids = list(range(n))
    tape = ScheduleTape(StaticAdversary(ids, line_edges(ids)))
    tape.bind(frozenset(ids))
    tape.topology(1)
    if expected_dense:
        assert tape.representation == "dense"
    else:
        assert tape.representation in ("bitset", "csr")


def test_boundary_bit_identity():
    """Crossing the limit changes the kernel, never the trace."""
    n = DENSE_NODE_LIMIT + 1
    ids = list(range(n))
    make_nodes = _flood(ids, src=n // 2)
    make_adv = lambda: StaticAdversary(ids, line_edges(ids))
    sparse = _run(make_nodes, make_adv, 7, 4)
    dense = _run(make_nodes, make_adv, 7, 4, dense_node_limit=n)
    assert sparse.representation in ("bitset", "csr")
    assert dense.representation == "dense"
    assert first_trace_divergence(dense.trace, sparse.trace) is None
    assert trace_fingerprint(dense.trace) == trace_fingerprint(sparse.trace)


def test_density_steers_bitset_vs_csr():
    """Sparse cells pick by memory: dense graphs bitset, sparse CSR."""
    ids = list(range(24))
    clique = [(u, v) for u in ids for v in ids if u < v]
    dense_tape = ScheduleTape(
        StaticAdversary(ids, clique), dense_node_limit=0
    )
    dense_tape.bind(frozenset(ids))
    dense_tape.topology(1)
    assert dense_tape.representation == "bitset"

    # CSR needs the bitset's n^2/8 bytes to lose to ~16E: a line only
    # gets there past n = 128
    big_ids = list(range(200))
    line_tape = ScheduleTape(
        StaticAdversary(big_ids, line_edges(big_ids)), dense_node_limit=0
    )
    line_tape.bind(frozenset(big_ids))
    line_tape.topology(1)
    assert line_tape.representation == "csr"


# -- degenerate round shapes ----------------------------------------------


def _fingerprints_across_representations(
    make_nodes, make_adv, seed, rounds, check_connected=True
):
    """Trace fingerprint under every representation; must be one value."""
    variants = {
        "dense": dict(),
        "auto-sparse": dict(dense_node_limit=0),
        "bitset": dict(dense_node_limit=0, sparse="bitset"),
        "csr": dict(dense_node_limit=0, sparse="csr"),
        "scan": dict(dense_node_limit=0, sparse="scan"),
    }
    prints = {}
    for name, kwargs in variants.items():
        engine = _run(
            make_nodes, make_adv, seed, rounds,
            check_connected=check_connected, **kwargs,
        )
        prints[name] = trace_fingerprint(engine.trace)
    reference = _run(
        make_nodes, make_adv, seed, rounds,
        reference=True, check_connected=check_connected,
    )
    prints["reference"] = trace_fingerprint(reference.trace)
    return prints


def test_isolated_then_reconnected_node():
    """A node cut off for three rounds, then rejoined, on every kernel."""
    ids = list(range(9))
    connected = line_edges(ids)
    partial = line_edges(ids[:-1])  # node 8 isolated

    def edges(round_, view):
        return partial if round_ <= 3 else connected

    make_adv = lambda: FunctionAdversary(ids, edges, oblivious=True)
    prints = _fingerprints_across_representations(
        _gossip(ids), make_adv, seed=5, rounds=8, check_connected=False
    )
    assert len(set(prints.values())) == 1, prints


def test_single_edge_rounds():
    """Rounds whose whole topology is one live edge."""
    ids = list(range(6))

    def edges(round_, view):
        return [(round_ % 6, (round_ + 1) % 6)]

    make_adv = lambda: FunctionAdversary(ids, edges, oblivious=True)
    prints = _fingerprints_across_representations(
        _gossip(ids), make_adv, seed=11, rounds=10, check_connected=False
    )
    assert len(set(prints.values())) == 1, prints


def test_empty_rounds():
    """Edgeless rounds deliver nothing, identically, on every kernel."""
    ids = list(range(5))
    connected = line_edges(ids)

    def edges(round_, view):
        return [] if round_ % 2 == 0 else connected

    make_adv = lambda: FunctionAdversary(ids, edges, oblivious=True)
    prints = _fingerprints_across_representations(
        _gossip(ids), make_adv, seed=3, rounds=8, check_connected=False
    )
    assert len(set(prints.values())) == 1, prints


def test_force_sparse_matches_force_dense_randomized():
    """dense_node_limit=0 (forced sparse) == forced dense, random graphs."""
    ids = list(range(30))
    make_nodes = _gossip(ids)
    make_adv = lambda: RandomConnectedAdversary(ids, seed=9, extra_edge_prob=0.15)
    forced_sparse = _run(make_nodes, make_adv, 13, 20, dense_node_limit=0)
    forced_dense = _run(make_nodes, make_adv, 13, 20, dense_node_limit=10 ** 6)
    assert forced_sparse.representation in ("bitset", "csr")
    assert forced_dense.representation == "dense"
    assert first_trace_divergence(forced_dense.trace, forced_sparse.trace) is None
    assert trace_fingerprint(forced_dense.trace) == trace_fingerprint(
        forced_sparse.trace
    )
