"""Tests for trace accounting and the replication runner."""

from __future__ import annotations

from repro.network.adversaries import StaticAdversary
from repro.protocols.flooding import TokenFloodNode
from repro.sim.actions import Receive, Send
from repro.sim.config import RunConfig
from repro.sim.node import ProtocolNode
from repro.sim.runner import replicate, run_protocol
from repro.sim.trace import ExecutionTrace, RoundRecord


def _record(r, bits):
    return RoundRecord(
        round=r,
        edges=frozenset({(1, 2)}),
        sends={1: ("x",)},
        bits={1: bits},
        receivers=frozenset({2}),
        delivered={2: 1},
    )


class TestExecutionTrace:
    def test_total_bits(self):
        t = ExecutionTrace(num_nodes=2)
        t.append(_record(1, 10))
        t.append(_record(2, 5))
        assert t.total_bits() == 15

    def test_bits_by_node(self):
        t = ExecutionTrace(num_nodes=2)
        t.append(_record(1, 10))
        t.append(_record(2, 5))
        assert t.bits_by_node() == {1: 15}

    def test_edge_schedule(self):
        t = ExecutionTrace(num_nodes=2)
        t.append(_record(1, 1))
        assert t.edge_schedule() == [frozenset({(1, 2)})]

    def test_sends_of(self):
        t = ExecutionTrace(num_nodes=2)
        t.append(_record(1, 1))
        t.append(_record(2, 1))
        assert t.sends_of(1) == [(1, ("x",)), (2, ("x",))]
        assert t.sends_of(2) == []


class TestRunner:
    def _cell(self, seed):
        ids = [1, 2, 3, 4]
        return run_protocol(
            make_nodes=lambda: {u: TokenFloodNode(u, source=1) for u in ids},
            make_adversary=lambda: StaticAdversary(ids, [(1, 2), (2, 3), (3, 4)]),
            config=RunConfig(seed=seed, max_rounds=20),
        )

    def test_run_protocol_terminates(self):
        run = self._cell(1)
        assert run.terminated
        assert run.rounds == 3  # token walks the line in D = 3 rounds
        assert all(v == ("informed",) for v in run.outputs.values())

    def test_replicate_aggregates(self):
        ids = [1, 2, 3, 4]
        summary = replicate(
            make_nodes=lambda: {u: TokenFloodNode(u, source=1) for u in ids},
            make_adversary=lambda: StaticAdversary(ids, [(1, 2), (2, 3), (3, 4)]),
            seeds=[1, 2, 3],
            config=RunConfig(max_rounds=20),
        )
        assert summary.num_runs == 3
        assert summary.termination_rate == 1.0
        assert summary.mean_rounds == 3
        assert summary.median_rounds == 3
        assert summary.max_rounds == 3
        assert summary.mean_bits > 0
        assert summary.error_rate(lambda r: r.terminated) == 0.0
        assert summary.error_rate(lambda r: False) == 1.0
