"""Replica-axis vectorization: coin block, shared memo, config knob.

``run_batch_replicas(..., vector_replicas=True)`` folds all K replicas'
coin state into one ``(K, N)`` uint64 block advanced once per lockstep
round, and shares one encoding memo across the cohort.  Both are pure
execution-strategy changes — every per-replica observable (trace,
fingerprint, bits, outputs) must equal the scalar path exactly, which
is what these tests pin, alongside the unit behaviour of the kernel and
the ``REPRO_VECTOR_REPLICAS`` / ``RunConfig(vector_replicas=...)``
resolution order.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.faults.check import trace_fingerprint
from repro.network.adaptive import AdaptiveBlockingAdversary
from repro.network.adversaries import TIntervalAdversary
from repro.protocols.flooding import GossipMaxNode, TokenFloodNode
from repro.sim.batch import ReplicaCoinBlock, run_batch_replicas
from repro.sim.coins import stable_hash64
from repro.sim.config import RunConfig, VECTOR_REPLICAS_ENV
from repro.sim.encoding import EncodingMemo, interned_encoding


# -- ReplicaCoinBlock ------------------------------------------------------


def test_coin_block_matches_scalar_hash():
    """Every (slot, uid, round) cell equals the scalar FNV fold."""
    seeds = [0, 1, 7, 2 ** 40 + 3]
    uids = [0, 2, 5, 11, 2 ** 33]
    block = ReplicaCoinBlock(seeds, uids)
    assert block.shape == (4, 5)
    for round_ in (1, 2, 17):
        for slot, seed in enumerate(seeds):
            want = [stable_hash64((seed, uid, round_)) for uid in uids]
            assert block.row(slot, round_) == want


def test_coin_block_round_cache():
    """Lockstep access computes each round matrix once, serves it K times."""
    block = ReplicaCoinBlock([1, 2, 3], [0, 1])
    for round_ in (1, 2):
        for slot in range(3):
            block.row(slot, round_)
    assert block.stats == {"rounds": 2, "rows_served": 6}


def test_coin_block_straggler_rounds():
    """Early-terminating replicas stop asking; stragglers advance alone."""
    block = ReplicaCoinBlock([1, 2], [0, 1])
    block.row(0, 1)
    block.row(1, 1)
    block.row(1, 2)  # replica 0 terminated; only replica 1 continues
    assert block.stats["rounds"] == 2
    assert block.row(1, 2) == [stable_hash64((2, u, 2)) for u in (0, 1)]


def test_coin_block_negative_seed_exact():
    """Negative seeds take the multi-chunk scalar prologue, exactly."""
    block = ReplicaCoinBlock([-5], [0, 3])
    assert block.row(0, 1) == [stable_hash64((-5, u, 1)) for u in (0, 3)]


def test_coin_block_refuses_exotic_uids():
    with pytest.raises(ConfigurationError, match="uids in"):
        ReplicaCoinBlock([1], [-1])
    with pytest.raises(ConfigurationError, match="uids in"):
        ReplicaCoinBlock([1], [2 ** 64])


# -- EncodingMemo ----------------------------------------------------------


def test_encoding_memo_matches_interned():
    memo = EncodingMemo()
    for payload in (5, (1, 2), ("x", True), None, (3.5, b"ab")):
        assert memo.lookup(payload) == interned_encoding(payload)
    # memoized second lookup returns the identical answer
    payload = (9, "token")
    first = memo.lookup(payload)
    assert memo.lookup(payload) == first


def test_encoding_memo_admits_only_flat_immutable_payloads():
    memo = EncodingMemo()
    flat = (1, "x", True)
    nested = ((1, 2), 3)  # valid payload, but not identity-memoizable
    assert memo.lookup(flat) == interned_encoding(flat)
    size_after_flat = len(memo)
    assert memo.lookup(nested) == interned_encoding(nested)
    assert len(memo) == size_after_flat  # nested payload not admitted


def test_encoding_memo_bounded():
    memo = EncodingMemo(limit=4)
    keep = [(i,) for i in range(6)]  # hold refs so ids stay unique
    for payload in keep:
        memo.lookup(payload)
    assert len(memo) <= 4


# -- lockstep bit-identity -------------------------------------------------


def _cells():
    ids = tuple(range(12))
    yield (
        "gossip/t-interval",
        lambda: {u: GossipMaxNode(u) for u in ids},
        lambda: TIntervalAdversary(ids, seed=5, interval=3, extra_edge_prob=0.1),
        30,
    )
    yield (
        "flood/adaptive-blocking",
        lambda: {u: TokenFloodNode(u, source=ids[len(ids) // 2]) for u in ids},
        lambda: AdaptiveBlockingAdversary(
            list(ids), probe=lambda n: bool(getattr(n, "informed", False))
        ),
        40,
    )


@pytest.mark.parametrize(
    "name,make_nodes,make_adv,max_rounds",
    list(_cells()),
    ids=[c[0] for c in _cells()],
)
def test_vector_replicas_bit_identical(name, make_nodes, make_adv, max_rounds):
    seeds = list(range(1, 7))
    scalar = run_batch_replicas(make_nodes, make_adv, seeds, max_rounds=max_rounds)
    vector = run_batch_replicas(
        make_nodes, make_adv, seeds, max_rounds=max_rounds, vector_replicas=True
    )
    for a, b in zip(scalar, vector):
        assert trace_fingerprint(a.trace) == trace_fingerprint(b.trace)
        assert a.trace.total_bits() == b.trace.total_bits()
        assert a.outputs == b.outputs
        assert (a.terminated, a.rounds) == (b.terminated, b.rounds)


def test_vector_replicas_instrumented_falls_back():
    """Instrumented replicas run sequentially — still bit-identical."""
    ids = tuple(range(8))
    make_nodes = lambda: {u: GossipMaxNode(u) for u in ids}
    make_adv = lambda: TIntervalAdversary(ids, seed=2, interval=2)
    seeds = [4, 5]
    plain = run_batch_replicas(make_nodes, make_adv, seeds, max_rounds=20)
    instrumented = run_batch_replicas(
        make_nodes, make_adv, seeds, max_rounds=20,
        vector_replicas=True, instrument=True,
    )
    for a, b in zip(plain, instrumented):
        assert trace_fingerprint(a.trace) == trace_fingerprint(b.trace)


# -- the config knob -------------------------------------------------------


def test_vector_replicas_env_resolution(monkeypatch):
    monkeypatch.setenv(VECTOR_REPLICAS_ENV, "1")
    assert RunConfig(seed=1, max_rounds=5).resolved_vector_replicas() is True
    monkeypatch.setenv(VECTOR_REPLICAS_ENV, "off")
    assert RunConfig(seed=1, max_rounds=5).resolved_vector_replicas() is False
    # explicit beats env
    monkeypatch.setenv(VECTOR_REPLICAS_ENV, "1")
    cfg = RunConfig(seed=1, max_rounds=5, vector_replicas=False)
    assert cfg.resolved_vector_replicas() is False


def test_vector_replicas_env_rejects_garbage(monkeypatch):
    monkeypatch.setenv(VECTOR_REPLICAS_ENV, "bogus")
    with pytest.raises(ConfigurationError):
        RunConfig(seed=1, max_rounds=5).resolved_vector_replicas()


def test_config_captures_vector_fields():
    cfg = RunConfig(
        seed=1, max_rounds=5, vector_replicas=True, dense_node_limit=64
    )
    data = cfg.as_dict()
    assert data["vector_replicas"] is True
    assert data["dense_node_limit"] == 64
    assert RunConfig.from_dict(data) == cfg


def test_dense_node_limit_validated():
    with pytest.raises(ConfigurationError):
        RunConfig(seed=1, max_rounds=5, dense_node_limit=-1)
