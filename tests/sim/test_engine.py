"""Tests for the synchronous round engine (Section-2 semantics)."""

from __future__ import annotations

from typing import Any, Tuple

import pytest

from repro.errors import (
    BandwidthExceeded,
    DisconnectedTopology,
    InvalidAction,
    ModelViolation,
)
from repro.network.adversaries import StaticAdversary
from repro.network.generators import line_edges, star_edges
from repro.sim.actions import Receive, Send
from repro.sim.coins import CoinSource, Coins
from repro.sim.engine import SynchronousEngine
from repro.sim.node import ProtocolNode


class EchoNode(ProtocolNode):
    """Sends its id every round; never terminates."""

    def action(self, round_, coins):
        return Send(("echo", self.uid))

    def on_messages(self, round_, payloads):
        raise AssertionError("senders never receive")


class SinkNode(ProtocolNode):
    """Receives every round, remembering everything."""

    def __init__(self, uid):
        super().__init__(uid)
        self.received = {}

    def action(self, round_, coins):
        return Receive()

    def on_messages(self, round_, payloads):
        self.received[round_] = payloads


class OneShotNode(ProtocolNode):
    """Outputs after ``k`` rounds."""

    def __init__(self, uid, k):
        super().__init__(uid)
        self.k = k
        self.r = 0

    def action(self, round_, coins):
        self.r = round_
        return Receive()

    def on_messages(self, round_, payloads):
        pass

    def output(self):
        return ("done",) if self.r >= self.k else None


def make_engine(nodes, edges, seed=1, **kw):
    ids = list(nodes)
    return SynchronousEngine(nodes, StaticAdversary(ids, edges), CoinSource(seed), **kw)


class TestDelivery:
    def test_receiver_gets_neighbor_payloads(self):
        nodes = {1: EchoNode(1), 2: SinkNode(2), 3: EchoNode(3)}
        eng = make_engine(nodes, [(1, 2), (2, 3)])
        eng.step()
        assert nodes[2].received[1] == (("echo", 1), ("echo", 3))

    def test_non_neighbor_not_delivered(self):
        nodes = {1: EchoNode(1), 2: SinkNode(2), 3: EchoNode(3)}
        eng = make_engine(nodes, [(1, 2), (1, 3)])  # star on 1
        eng.step()
        assert nodes[2].received[1] == (("echo", 1),)

    def test_payloads_sorted_canonically(self):
        nodes = {5: EchoNode(5), 2: SinkNode(2), 1: EchoNode(1)}
        eng = make_engine(nodes, [(5, 2), (1, 2)])
        eng.step()
        assert nodes[2].received[1] == (("echo", 1), ("echo", 5))

    def test_two_senders_no_delivery_to_each_other(self):
        nodes = {1: EchoNode(1), 2: EchoNode(2), 3: SinkNode(3)}
        eng = make_engine(nodes, [(1, 2), (2, 3)])
        eng.step()  # EchoNode.on_messages would raise if delivered
        assert nodes[3].received[1] == (("echo", 2),)

    def test_empty_delivery_still_invoked(self):
        nodes = {1: SinkNode(1), 2: SinkNode(2)}
        eng = make_engine(nodes, [(1, 2)])
        eng.step()
        assert nodes[1].received[1] == ()


class TestValidation:
    def test_disconnected_topology_rejected(self):
        nodes = {1: SinkNode(1), 2: SinkNode(2), 3: SinkNode(3)}
        eng = make_engine(nodes, [(1, 2)])
        with pytest.raises(DisconnectedTopology):
            eng.step()

    def test_disconnected_allowed_when_disabled(self):
        nodes = {1: SinkNode(1), 2: SinkNode(2), 3: SinkNode(3)}
        eng = make_engine(nodes, [(1, 2)], check_connected=False)
        eng.step()  # no raise

    def test_edge_outside_node_set_rejected(self):
        nodes = {1: SinkNode(1), 2: SinkNode(2)}
        eng = make_engine(nodes, [(1, 9)])
        with pytest.raises(ModelViolation):
            eng.step()

    def test_self_loop_rejected(self):
        nodes = {1: SinkNode(1), 2: SinkNode(2)}
        eng = make_engine(nodes, [(1, 1), (1, 2)])
        with pytest.raises(ModelViolation):
            eng.step()

    def test_bandwidth_enforced(self):
        class Chatty(ProtocolNode):
            def action(self, round_, coins):
                return Send(tuple(range(1000)))

            def on_messages(self, round_, payloads):
                pass

        nodes = {1: Chatty(1), 2: SinkNode(2)}
        eng = make_engine(nodes, [(1, 2)])
        with pytest.raises(BandwidthExceeded):
            eng.step()

    def test_invalid_action_rejected(self):
        class Broken(ProtocolNode):
            def action(self, round_, coins):
                return "send please"

            def on_messages(self, round_, payloads):
                pass

        nodes = {1: Broken(1), 2: SinkNode(2)}
        eng = make_engine(nodes, [(1, 2)])
        with pytest.raises(InvalidAction):
            eng.step()


class TestTermination:
    def test_terminates_when_all_output(self):
        nodes = {1: OneShotNode(1, 3), 2: OneShotNode(2, 5)}
        eng = make_engine(nodes, [(1, 2)])
        trace = eng.run(max_rounds=100)
        assert trace.termination_round == 5
        assert trace.rounds == 5

    def test_max_rounds_cap(self):
        nodes = {1: OneShotNode(1, 1000), 2: OneShotNode(2, 1000)}
        eng = make_engine(nodes, [(1, 2)])
        trace = eng.run(max_rounds=10)
        assert trace.termination_round is None
        assert trace.rounds == 10

    def test_custom_stop(self):
        nodes = {1: SinkNode(1), 2: SinkNode(2)}
        eng = make_engine(nodes, [(1, 2)])
        trace = eng.run(max_rounds=100, stop=lambda ns: len(ns[1].received) >= 4)
        assert trace.rounds == 4

    def test_outputs_recorded(self):
        nodes = {1: OneShotNode(1, 2), 2: OneShotNode(2, 2)}
        eng = make_engine(nodes, [(1, 2)])
        trace = eng.run(max_rounds=10)
        assert trace.outputs == {1: ("done",), 2: ("done",)}


class TestTraceAccounting:
    def test_bits_counted_per_sender(self):
        nodes = {1: EchoNode(1), 2: SinkNode(2), 3: SinkNode(3)}
        eng = make_engine(nodes, [(1, 2), (2, 3)])
        rec = eng.step()
        assert set(rec.sends) == {1}
        assert rec.bits[1] > 0
        assert rec.receivers == frozenset({2, 3})
        assert rec.delivered == {2: 1, 3: 0}

    def test_adversary_sees_committed_actions(self):
        seen = {}

        class Probe(StaticAdversary):
            def edges(self, round_, view):
                seen[round_] = (view.is_sending(1), view.is_receiving(2))
                return super().edges(round_, view)

        nodes = {1: EchoNode(1), 2: SinkNode(2), 3: SinkNode(3)}
        eng = SynchronousEngine(nodes, Probe([1, 2, 3], [(1, 2), (2, 3)]), CoinSource(1))
        eng.step()
        assert seen[1] == (True, True)
