"""Golden-fingerprint corpus: pinned traces replayed on every backend.

``tests/data/golden_fingerprints.json`` commits the reference-backend
trace fingerprint and bit totals of ~20 canonical cells spanning every
protocol × adversary family.  Relative differential tests (reference vs
batch) catch the two engines drifting *apart*; this corpus catches them
drifting *together* — any change to coin folding, encoding, delivery
order, or adversary scheduling that silently alters semantics fails
here, on every backend, against a value reviewed into git.

Regenerate (only after an intentional semantic change)::

    python tools/fuzz_backends.py --write-golden tests/data/golden_fingerprints.json
"""

from __future__ import annotations

import importlib.util
import json
import pathlib
import sys

import pytest

_ROOT = pathlib.Path(__file__).resolve().parents[2]
_GOLDEN = _ROOT / "tests" / "data" / "golden_fingerprints.json"


def _load_tool():
    spec = importlib.util.spec_from_file_location(
        "fuzz_backends", _ROOT / "tools" / "fuzz_backends.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("fuzz_backends", module)
    spec.loader.exec_module(module)
    return module


fb = _load_tool()

with _GOLDEN.open() as fh:
    _CORPUS = json.load(fh)

_CELLS = [(rec["cell"]["name"], rec) for rec in _CORPUS["cells"]]


def test_corpus_is_current_format():
    assert _CORPUS["version"] == 1
    assert len(_CORPUS["cells"]) >= 20


def test_corpus_matches_curated_cells():
    """The committed corpus covers exactly the curated GOLDEN_CELLS."""
    committed = [rec["cell"]["name"] for rec in _CORPUS["cells"]]
    curated = [cell.name for cell in fb.GOLDEN_CELLS]
    assert committed == curated, (
        "corpus out of date — regenerate with "
        "`python tools/fuzz_backends.py --write-golden "
        "tests/data/golden_fingerprints.json`"
    )


def test_corpus_spans_every_family():
    protocols = {rec["cell"]["protocol"] for rec in _CORPUS["cells"]}
    adversaries = {rec["cell"]["adversary"] for rec in _CORPUS["cells"]}
    assert protocols == set(fb.PROTOCOLS)
    assert set(fb.OBLIVIOUS_ADVERSARIES) <= adversaries
    assert adversaries & set(fb.ADAPTIVE_ADVERSARIES)


@pytest.mark.parametrize("variant", sorted(fb.VARIANTS))
@pytest.mark.parametrize("name,record", _CELLS, ids=[n for n, _ in _CELLS])
def test_golden_replay(name, record, variant):
    cell = fb.Cell.from_dict(record["cell"])
    results = fb.run_cell(cell, variant)
    assert len(results) == len(record["results"])
    for want, got in zip(record["results"], results):
        context = f"{name} [{variant}] seed {want['seed']}"
        assert got["fingerprint"] == want["fingerprint"], context
        assert got["bits_sent"] == want["bits_sent"], context
        assert got["rounds"] == want["rounds"], context
        assert got["terminated"] == want["terminated"], context
