"""Tests for the exception hierarchy and CONGEST budget helpers."""

from __future__ import annotations

import pytest

from repro.errors import (
    BandwidthExceeded,
    ConfigurationError,
    DisconnectedTopology,
    InvalidAction,
    ModelViolation,
    PromiseViolation,
    ProtocolError,
    ReproError,
    SimulationDiverged,
)
from repro.sim.messages import DEFAULT_BANDWIDTH_FACTOR, congest_budget


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (
            ModelViolation,
            DisconnectedTopology,
            InvalidAction,
            PromiseViolation,
            SimulationDiverged,
            ProtocolError,
            ConfigurationError,
        ):
            assert issubclass(exc, ReproError)

    def test_model_violations_grouped(self):
        assert issubclass(BandwidthExceeded, ModelViolation)
        assert issubclass(DisconnectedTopology, ModelViolation)
        assert issubclass(InvalidAction, ModelViolation)

    def test_bandwidth_exceeded_carries_context(self):
        err = BandwidthExceeded(bits=100, budget=24, sender=7, round_=3)
        assert err.bits == 100 and err.budget == 24
        assert err.sender == 7 and err.round == 3
        assert "node 7" in str(err) and "round 3" in str(err)

    def test_catching_base_class(self):
        with pytest.raises(ReproError):
            raise PromiseViolation("broken promise")


class TestCongestBudget:
    def test_scales_with_log_n(self):
        assert congest_budget(2) == DEFAULT_BANDWIDTH_FACTOR
        assert congest_budget(1024) == 10 * DEFAULT_BANDWIDTH_FACTOR
        assert congest_budget(1 << 20) == 2 * congest_budget(1 << 10)

    def test_custom_factor(self):
        assert congest_budget(256, bandwidth_factor=1) == 8

    def test_minimum_one_bit_of_ids(self):
        assert congest_budget(1) >= DEFAULT_BANDWIDTH_FACTOR
