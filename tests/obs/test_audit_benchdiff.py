"""``repro audit`` / ``repro bench-diff`` / OpenMetrics exposition."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs.audit import audit_path, render_audit, resolve_run_files
from repro.obs.benchdiff import DEFAULT_THRESHOLD, diff_dirs, render_diff
from repro.obs.metrics import MetricsRegistry


def _exp_json(exp_id, rows, summary=None, wall=None, phases=None):
    timings = {}
    if wall is not None:
        timings = {
            "wall_seconds": wall,
            "engine_runs": 1,
            "phase_seconds": phases or {},
        }
    return {
        "exp_id": exp_id,
        "title": exp_id,
        "headers": ["a", "b"],
        "rows": rows,
        "summary": summary or {},
        "notes": [],
        "timings": timings,
    }


def _write_dir(path, payloads):
    path.mkdir(parents=True, exist_ok=True)
    for payload in payloads:
        (path / f"{payload['exp_id']}.json").write_text(json.dumps(payload))


class TestBenchDiff:
    def test_identical_dirs_are_ok(self, tmp_path):
        data = [_exp_json("EXP-X1", [[1, 2]], wall=1.0)]
        _write_dir(tmp_path / "old", data)
        _write_dir(tmp_path / "new", data)
        diffs, code = diff_dirs(tmp_path / "old", tmp_path / "new")
        assert code == 0
        assert [d.status for d in diffs] == ["ok"]

    def test_row_drift_flags_and_fails(self, tmp_path):
        _write_dir(tmp_path / "old", [_exp_json("EXP-X1", [[1, 2]], {"s": 3})])
        _write_dir(tmp_path / "new", [_exp_json("EXP-X1", [[1, 9]], {"s": 4})])
        diffs, code = diff_dirs(tmp_path / "old", tmp_path / "new")
        assert code == 1
        assert diffs[0].status == "drift"
        joined = " ".join(diffs[0].details)
        assert "row 0 col 1" in joined and "summary[s]" in joined

    def test_wall_regression_flags(self, tmp_path):
        _write_dir(tmp_path / "old", [_exp_json("EXP-X1", [[1]], wall=1.0)])
        _write_dir(tmp_path / "new", [_exp_json("EXP-X1", [[1]], wall=2.0)])
        diffs, code = diff_dirs(tmp_path / "old", tmp_path / "new")
        assert code == 1
        assert diffs[0].status == "regression"
        assert "wall" in diffs[0].details[0]

    def test_speedup_and_noise_are_ok(self, tmp_path):
        _write_dir(
            tmp_path / "old",
            [
                _exp_json("EXP-F", [[1]], wall=2.0),  # gets faster
                _exp_json("EXP-N", [[1]], wall=0.004),  # too small to judge
            ],
        )
        _write_dir(
            tmp_path / "new",
            [
                _exp_json("EXP-F", [[1]], wall=1.0),
                _exp_json("EXP-N", [[1]], wall=0.040),  # 10x but sub-MIN_SECONDS
            ],
        )
        diffs, code = diff_dirs(tmp_path / "old", tmp_path / "new")
        assert code == 0
        assert [d.status for d in diffs] == ["ok", "ok"]

    def test_threshold_is_respected(self, tmp_path):
        _write_dir(tmp_path / "old", [_exp_json("EXP-X1", [[1]], wall=1.0)])
        _write_dir(tmp_path / "new", [_exp_json("EXP-X1", [[1]], wall=1.2)])
        _, code_strict = diff_dirs(tmp_path / "old", tmp_path / "new", threshold=0.1)
        _, code_loose = diff_dirs(tmp_path / "old", tmp_path / "new", threshold=0.5)
        assert code_strict == 1 and code_loose == 0

    def test_only_old_fails_only_new_passes(self, tmp_path):
        _write_dir(tmp_path / "old", [_exp_json("EXP-A", [[1]])])
        _write_dir(tmp_path / "new", [_exp_json("EXP-B", [[1]])])
        diffs, code = diff_dirs(tmp_path / "old", tmp_path / "new")
        statuses = {d.exp_id: d.status for d in diffs}
        assert statuses == {"EXP-A": "only-old", "EXP-B": "only-new"}
        assert code == 1  # a vanished experiment is a failure

        (tmp_path / "old" / "EXP-A.json").unlink()
        _write_dir(tmp_path / "old", [_exp_json("EXP-B", [[1]])])
        diffs, code = diff_dirs(tmp_path / "old", tmp_path / "new")
        assert code == 0  # a brand-new experiment alone is not

    def test_render_mentions_failures(self, tmp_path):
        _write_dir(tmp_path / "old", [_exp_json("EXP-X1", [[1, 2]])])
        _write_dir(tmp_path / "new", [_exp_json("EXP-X1", [[1, 3]])])
        diffs, _ = diff_dirs(tmp_path / "old", tmp_path / "new")
        text = render_diff(diffs, threshold=DEFAULT_THRESHOLD)
        assert "EXP-X1" in text and "drift" in text and "totals:" in text

    def test_empty_dirs_exit_2(self, tmp_path):
        (tmp_path / "old").mkdir()
        (tmp_path / "new").mkdir()
        diffs, code = diff_dirs(tmp_path / "old", tmp_path / "new")
        assert diffs == [] and code == 2

    def test_missing_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            diff_dirs(tmp_path / "absent", tmp_path / "absent2")


class TestOpenMetrics:
    def test_render_counters_gauges_histograms(self):
        reg = MetricsRegistry()
        reg.counter("bits_total").inc(42)
        reg.gauge("spoiled_nodes", {"party": "alice"}).set(7)
        h = reg.histogram("phase_seconds", {"phase": "actions"}, buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        text = reg.render_openmetrics()
        lines = text.splitlines()
        assert "# TYPE bits_total counter" in lines
        assert "bits_total 42" in lines
        assert '# TYPE spoiled_nodes gauge' in lines
        assert 'spoiled_nodes{party="alice"} 7' in lines
        # histogram buckets are cumulative and end with +Inf == count
        assert 'phase_seconds_bucket{phase="actions",le="0.1"} 1' in lines
        assert 'phase_seconds_bucket{phase="actions",le="1.0"} 2' in lines
        assert 'phase_seconds_bucket{phase="actions",le="+Inf"} 3' in lines
        assert 'phase_seconds_count{phase="actions"} 3' in lines
        assert any(l.startswith('phase_seconds_sum{phase="actions"}') for l in lines)
        assert lines[-1] == "# EOF"

    def test_empty_registry_renders_eof_only(self):
        assert MetricsRegistry().render_openmetrics() == "# EOF\n"


@pytest.mark.slow
class TestCliIntegration:
    def test_thm6_trace_then_audit_ok(self, tmp_path, capsys):
        trace = tmp_path / "t6"
        assert main(["thm6", "--quick", "--trace-out", str(trace)]) == 0
        capsys.readouterr()
        assert main(["audit", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "all ok" in out
        assert "spoiled[alice]" in out and "cut bits" in out
        assert "divergence[" in out

    def test_audit_single_run_file(self, tmp_path, capsys):
        trace = tmp_path / "t6"
        assert main(["thm6", "--quick", "--trace-out", str(trace)]) == 0
        capsys.readouterr()
        runs = resolve_run_files(trace)
        assert runs  # manifest-ordered
        assert main(["audit", str(runs[0])]) == 0

    def test_audit_engine_only_session_exits_2(self, tmp_path, capsys):
        trace = tmp_path / "fig1"
        assert main(["fig1", "--trace-out", str(trace)]) == 0
        capsys.readouterr()
        assert main(["audit", str(trace)]) == 2
        assert "nothing to audit" in capsys.readouterr().out

    def test_audit_missing_path_exits_2(self, tmp_path, capsys):
        assert main(["audit", str(tmp_path / "nope")]) == 2

    def test_inspect_session_directory(self, tmp_path, capsys):
        trace = tmp_path / "t6"
        assert main(["thm6", "--quick", "--trace-out", str(trace)]) == 0
        capsys.readouterr()
        assert main(["inspect", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "session:" in out and "reduction" in out
        assert "run-0001.jsonl" in out
        # manifest.json path works too
        assert main(["inspect", str(trace / "manifest.json")]) == 0

    def test_metrics_out_writes_openmetrics(self, tmp_path, capsys):
        prom = tmp_path / "m.prom"
        assert main(["thm6", "--quick", "--metrics-out", str(prom)]) == 0
        capsys.readouterr()
        text = prom.read_text()
        assert text.rstrip().endswith("# EOF")
        assert "cut_bits_total" in text

    def test_bench_diff_cli(self, tmp_path, capsys):
        _write_dir(tmp_path / "old", [_exp_json("EXP-X1", [[1, 2]])])
        _write_dir(tmp_path / "new", [_exp_json("EXP-X1", [[1, 2]])])
        assert main(["bench-diff", str(tmp_path / "old"), str(tmp_path / "new")]) == 0
        assert "ok" in capsys.readouterr().out
        (tmp_path / "new" / "EXP-X1.json").write_text(
            json.dumps(_exp_json("EXP-X1", [[1, 3]]))
        )
        assert main(["bench-diff", str(tmp_path / "old"), str(tmp_path / "new")]) == 1

    def test_bench_diff_wrong_arity(self, capsys):
        assert main(["bench-diff", "just-one"]) == 2

    def test_paths_rejected_for_experiments(self):
        with pytest.raises(SystemExit):
            main(["thm6", "some/path"])

    def test_render_audit_label(self, tmp_path, capsys):
        trace = tmp_path / "t6"
        assert main(["thm6", "--quick", "--trace-out", str(trace)]) == 0
        capsys.readouterr()
        reports, skipped, _ = audit_path(trace)
        text = render_audit(reports, skipped, label="mylabel")
        assert text.startswith("auditing mylabel")
