"""Tests for the metrics registry (counters, gauges, histograms, null sink)."""

from __future__ import annotations

import pytest

from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
)


class TestRegistry:
    def test_counter_get_or_create(self):
        reg = MetricsRegistry()
        c1 = reg.counter("rounds_total")
        c2 = reg.counter("rounds_total")
        assert c1 is c2
        c1.inc()
        c2.inc(4)
        assert c1.value == 5

    def test_labels_distinguish_instruments(self):
        reg = MetricsRegistry()
        a = reg.histogram("phase_seconds", {"phase": "actions"})
        b = reg.histogram("phase_seconds", {"phase": "delivery"})
        assert a is not b
        # label order does not matter
        c = reg.counter("m", {"x": "1", "y": "2"})
        d = reg.counter("m", {"y": "2", "x": "1"})
        assert c is d

    def test_type_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("thing")
        with pytest.raises(TypeError):
            reg.gauge("thing")

    def test_gauge_set_and_inc(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(3.0)
        g.inc(-1.0)
        assert g.value == 2.0

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("bits_sent_total").inc(7)
        reg.histogram("phase_seconds", {"phase": "actions"}).observe(0.25)
        snap = reg.snapshot()
        assert snap["bits_sent_total"] == {"type": "counter", "value": 7}
        hist = snap["phase_seconds{phase=actions}"]
        assert hist["type"] == "histogram"
        assert hist["count"] == 1 and hist["sum"] == 0.25
        assert hist["min"] == hist["max"] == 0.25


class TestHistogram:
    def test_bucketing_and_stats(self):
        h = Histogram("h", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(55.55)
        assert h.min == 0.05 and h.max == 50.0
        assert h.mean == pytest.approx(55.55 / 4)
        assert h.bucket_counts == [1, 1, 1, 1]  # one per bucket incl. +inf

    def test_boundary_goes_to_lower_bucket(self):
        h = Histogram("h", buckets=(1.0, 2.0))
        h.observe(1.0)
        assert h.bucket_counts == [1, 0, 0]

    def test_empty_histogram_mean(self):
        assert Histogram("h").mean == 0.0


class TestNullSink:
    def test_null_registry_discards_everything(self):
        reg = NullRegistry()
        reg.counter("rounds_total").inc(100)
        reg.gauge("g").set(5)
        reg.histogram("h").observe(1.0)
        assert reg.snapshot() == {}
        assert len(reg) == 0

    def test_shared_null_registry_is_a_null_registry(self):
        assert isinstance(NULL_REGISTRY, NullRegistry)
        # updates are accepted and dropped, never raising
        NULL_REGISTRY.counter("x").inc()
        assert NULL_REGISTRY.snapshot() == {}

    def test_real_counter_standalone(self):
        c = Counter("n")
        c.inc()
        assert c.as_dict()["value"] == 1
