"""The proof ledger: cut-bit accounting, spoil budgets, v1 compat.

The central invariants:

* the ledger's per-node cut attribution reconstructs the simulator's own
  ``bits_sent`` accounting *exactly* (property-tested on randomized
  Theorem-6 instances);
* on a correct run the measured spoiled count equals the Lemma 3/4
  budget curve every round (the closed forms are the schedule);
* a tampered spoil schedule — the injected "budget-violating adversary"
  — is caught, either silently (ledger violation, ``repro audit`` exits
  nonzero) or loudly (the detailed :class:`SimulationDiverged` report);
* ``format_version 1`` trace files still read through the v2 reader.
"""

from __future__ import annotations

import json
import math

import pytest
from hypothesis import given, settings

from repro.cc.disjointness import random_instance
from repro.core.composition import theorem6_network
from repro.core.reduction import cut_budget_bits
from repro.core.simulation import TwoPartyReduction
from repro.errors import SimulationDiverged
from repro.obs import observe, read_trace_jsonl
from repro.obs.ledger import ProofLedger, lemma_number, spoiled_budget_curve
from repro.protocols.cflood import cflood_factory
from repro.sim.actions import Receive
from repro.sim.node import ProtocolNode

from ..conftest import disjointness_instances


def make_reduction(inst, ledger=None, fast=False):
    net = theorem6_network(inst)
    source = net.special_nodes()["A_gamma"]
    if fast:
        fac = cflood_factory(source, d_param=10)
    else:
        fac = cflood_factory(source, num_nodes=net.num_nodes)
    return TwoPartyReduction(inst, "T6", fac, seed=1, ledger=ledger), net


class AlwaysReceive(ProtocolNode):
    """Receives every round; maximally consults neighbours."""

    def action(self, round_, coins):
        return Receive()

    def on_messages(self, round_, payloads):
        pass


class TestCutBitAccounting:
    @settings(max_examples=15, deadline=None)
    @given(inst=disjointness_instances(min_n=1, max_n=3, min_q=5, max_q=13))
    def test_cut_totals_equal_reduction_bits(self, inst):
        ledger = ProofLedger()
        red, net = make_reduction(inst, ledger=ledger)
        out = red.run()
        # every frame bit the parties charged is attributed in the ledger
        assert ledger.total_cut_bits == out.total_bits
        assert ledger.cut_bits_of("alice") == out.bits_alice_to_bob
        assert ledger.cut_bits_of("bob") == out.bits_bob_to_alice
        by_node = ledger.summary()["cut_bits_by_node"]
        # per-node charges + the per-frame 2-bit envelopes cover the total
        frames = out.rounds_simulated * 2  # one frame per party per round
        assert sum(by_node.values()) + 2 * frames == out.total_bits
        # and the O(s log N) envelope holds on the honest run
        assert out.total_bits <= cut_budget_bits(net.num_nodes, out.rounds_simulated)

    @settings(max_examples=15, deadline=None)
    @given(inst=disjointness_instances(min_n=1, max_n=3, min_q=5, max_q=13))
    def test_spoiled_counts_match_budget_exactly(self, inst):
        ledger = ProofLedger()
        red, _net = make_reduction(inst, ledger=ledger)
        red.run()
        spoiled = [r for r in ledger.records if r["kind"] == "spoiled"]
        assert spoiled, "no spoiled records collected"
        # the simulator spoils on exactly the closed-form schedule
        assert all(r["ok"] for r in spoiled)
        assert all(r["count"] == r["budget"] for r in spoiled)
        assert ledger.violations == 0


class TestBudgetCurve:
    def test_budget_curve_matches_simulator_schedule(self):
        inst = random_instance(2, 9, seed=3, value=1)
        red, _net = make_reduction(inst)
        for sim in (red.alice, red.bob):
            curve = spoiled_budget_curve(sim.party, sim.subnets)
            horizon = (inst.q - 1) // 2
            for r in range(1, horizon + 1):
                measured = sum(1 for sr in sim.spoil.values() if sr <= r)
                budget = sum(n for sr, n in curve.items() if sr <= r)
                assert measured == budget

    def test_lemma_number(self):
        inst = random_instance(1, 5, seed=1, value=1)
        red, _net = make_reduction(inst)
        gamma, lam = red.alice.subnets
        assert lemma_number(gamma) == 3
        assert lemma_number(lam) == 4


class TestInjectedViolations:
    def _tamper_silent(self, red):
        """Move one spoil round earlier: budget exceeded, nothing raises
        unless a neighbour actually consults the node."""
        sim = red.alice
        uid = min(u for u, sr in sim.spoil.items() if 2 <= sr < math.inf)
        sim.spoil[uid] = sim.spoil[uid] - 1
        return uid

    def test_silent_violation_is_ledgered(self):
        inst = random_instance(1, 9, seed=2, value=1)
        ledger = ProofLedger()
        red, _net = make_reduction(inst, ledger=ledger)
        self._tamper_silent(red)
        try:
            red.run()
        except SimulationDiverged:
            pass  # the tamper may also trip the delivery check; either way:
        bad = [r for r in ledger.records if r["kind"] == "spoiled" and not r["ok"]]
        assert bad, "early spoil never exceeded the budget curve"
        assert bad[0]["count"] == bad[0]["budget"] + 1
        assert "excess" in bad[0]
        assert ledger.violations >= 1

    def test_raising_violation_reports_lemma_round_and_sets(self):
        inst = random_instance(1, 9, seed=2, value=1)
        ledger = ProofLedger()
        net = theorem6_network(inst)
        red = TwoPartyReduction(inst, "T6", AlwaysReceive, seed=1, ledger=ledger)
        sim = red.alice
        # a never-spoiled (non-special) node with a live neighbour at r2
        specials = set(sim.my_specials.values())
        adj = {}
        for u, v in sim.edge_set(2):
            adj.setdefault(u, []).append(v)
            adj.setdefault(v, []).append(u)
        victim = next(
            u
            for u, sr in sorted(sim.spoil.items())
            if sr == math.inf
            and u not in specials
            and any(sim.spoil.get(nb, 0) > 2 for nb in adj.get(u, ()))
        )
        sim.spoil[victim] = 1
        with pytest.raises(SimulationDiverged) as exc:
            red.run()
        message = str(exc.value)
        assert "Lemma" in message
        assert f"neighbour {victim}" in message
        assert "spoiled set at round" in message
        assert "still-simulated set" in message
        assert "alice" in message
        violations = [r for r in ledger.records if r["kind"] == "violation"]
        assert violations and violations[0]["party"] == "alice"
        assert violations[0]["lemma"] in (3, 4)
        assert net.num_nodes == red.num_nodes

    def test_session_persists_diverged_run_and_audit_fails(self, tmp_path):
        from repro.obs.audit import audit_path

        inst = random_instance(1, 9, seed=2, value=1)
        with observe(trace_dir=tmp_path, label="tampered") as session:
            red, _net = make_reduction(inst)
            assert red.ledger is not None  # picked up from the session
            self._tamper_silent(red)
            try:
                red.run()
            except SimulationDiverged:
                pass
        assert session.num_runs == 1
        reports, skipped, code = audit_path(tmp_path)
        assert code == 1
        assert not skipped
        assert not reports[0].ok


class TestSessionIntegration:
    def test_reduction_recorded_with_metrics_and_jsonl(self, tmp_path):
        inst = random_instance(1, 9, seed=4, value=0)
        with observe(trace_dir=tmp_path, label="t6") as session:
            red, _net = make_reduction(inst)
            out = red.run()
        assert session.num_runs == 1
        snap = session.manifest.metrics
        assert snap["cut_bits_total"]["value"] == out.total_bits
        assert "spoiled_nodes{party=alice}" in snap
        # a (0,0) coordinate makes the reference adversary detach middles
        # the belief adversaries keep, so some pair diverges in-horizon
        assert any(k.startswith("adversary_divergence_round") for k in snap)

        run = read_trace_jsonl(tmp_path / "run-0001.jsonl")
        assert run.is_reduction
        assert run.format_version == 2
        assert run.manifest.kind == "reduction"
        assert run.trace.rounds == 0
        assert run.summary["total_bits"] == out.total_bits
        kinds = {r["kind"] for r in run.ledger}
        assert {"spoiled", "cut", "divergence"} <= kinds
        ledger_summary = run.summary["ledger_summary"]
        assert ledger_summary["violations"] == 0
        assert ledger_summary["cut_bits"]["total"] == out.total_bits

    def test_no_session_no_ledger(self):
        inst = random_instance(1, 5, seed=1, value=1)
        red, _net = make_reduction(inst)
        assert red.ledger is None
        assert red.alice.ledger is None and red.bob.ledger is None
        red.run()  # plain path still works


# A literal format_version-1 file (pre-ledger), as PR 1's writer emitted.
_V1_LINES = [
    {
        "type": "manifest",
        "format_version": 1,
        "seed": 7,
        "num_nodes": 2,
        "adversary": "StaticAdversary",
        "bandwidth_factor": None,
        "check_connected": True,
        "package_version": "1.0.0",
        "wall_seconds": 0.001,
        "trace_file": "run-0001.jsonl",
        "node_ids": [1, 2],
    },
    {
        "type": "round",
        "round": 1,
        "edges": [[1, 2]],
        "sends": {"1": ["i", 5]},
        "bits": {"1": 7},
        "receivers": [2],
        "delivered": {"2": 1},
    },
    {
        "type": "summary",
        "rounds": 1,
        "termination_round": 1,
        "total_bits": 7,
        "outputs": {"2": ["i", 5]},
    },
]


class TestFormatV1Compat:
    def test_v1_file_reads_through_v2_reader(self, tmp_path):
        path = tmp_path / "run-0001.jsonl"
        path.write_text("\n".join(json.dumps(line) for line in _V1_LINES) + "\n")
        run = read_trace_jsonl(path)
        assert run.format_version == 1
        assert run.ledger == []
        assert not run.is_reduction  # v1 manifests default to kind="engine"
        assert run.manifest.kind == "engine"
        assert run.trace.rounds == 1
        assert run.trace.total_bits() == 7
        assert run.trace.outputs == {2: 5}

    def test_v1_file_inspects(self, tmp_path):
        from repro.obs import inspect_run

        path = tmp_path / "run-0001.jsonl"
        path.write_text("\n".join(json.dumps(line) for line in _V1_LINES) + "\n")
        report = inspect_run(path)
        assert report.total_bits == 7
        assert "StaticAdversary" in report.render()

    def test_writer_stamps_v2(self, tmp_path):
        inst = random_instance(1, 5, seed=1, value=1)
        with observe(trace_dir=tmp_path):
            red, _net = make_reduction(inst)
            red.run()
        head = json.loads((tmp_path / "run-0001.jsonl").read_text().splitlines()[0])
        assert head["format_version"] == 2
        assert head["kind"] == "reduction"
