"""Merge semantics for parallel-worker observability.

Two layers of guarantee:

* unit: ``merge_from`` / ``MetricsRegistry.merge`` implement the
  documented algebra (counters add, gauges last-write-wins, histograms
  pool, bucket-bound mismatches refuse);
* session: an experiment run under ``observe()`` with a process pool
  leaves behind the *same* metrics snapshot and run files as the
  sequential run — modulo wall-clock fields — and its merged proof
  ledger still passes ``repro audit``.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.experiments.reductions import exp_thm6_reduction
from repro.obs.audit import audit_path
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.runtime import observe


class TestInstrumentMerge:
    def test_counter_adds(self):
        a, b = Counter("bits"), Counter("bits")
        a.inc(3)
        b.inc(4)
        a.merge_from(b)
        assert a.value == 7

    def test_gauge_last_write_wins(self):
        a, b = Gauge("round"), Gauge("round")
        a.set(10)
        b.set(4)
        a.merge_from(b)
        assert a.value == 4

    def test_histogram_pools(self):
        a = Histogram("t", buckets=(1.0, 2.0))
        b = Histogram("t", buckets=(1.0, 2.0))
        a.observe(0.5)
        b.observe(1.5)
        b.observe(9.0)
        a.merge_from(b)
        assert a.count == 3
        assert a.sum == pytest.approx(11.0)
        assert a.min == 0.5 and a.max == 9.0
        assert a.bucket_counts == [1, 1, 1]

    def test_histogram_bounds_mismatch_refuses(self):
        a = Histogram("t", buckets=(1.0, 2.0))
        b = Histogram("t", buckets=(1.0, 4.0))
        with pytest.raises(ValueError, match="bucket bounds differ"):
            a.merge_from(b)

    def test_empty_histogram_merge_keeps_none_extremes(self):
        a = Histogram("t", buckets=(1.0,))
        b = Histogram("t", buckets=(1.0,))
        a.merge_from(b)
        assert a.count == 0 and a.min is None and a.max is None


class TestRegistryMerge:
    def test_merge_creates_and_combines(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.counter("bits", {"phase": "send"}).inc(5)
        worker.counter("bits", {"phase": "send"}).inc(2)
        worker.counter("bits", {"phase": "recv"}).inc(1)  # new to parent
        worker.gauge("round").set(7)
        worker.histogram("t", buckets=(1.0,)).observe(0.5)
        parent.merge(worker)
        snap = parent.snapshot()
        assert snap["bits{phase=send}"]["value"] == 7
        assert snap["bits{phase=recv}"]["value"] == 1
        assert snap["round"]["value"] == 7
        assert snap["t"]["count"] == 1

    def test_merge_in_task_order_equals_sequential(self):
        # the property the parallel runner relies on: folding worker
        # registries in task order reproduces one shared registry
        sequential = MetricsRegistry()
        for task in range(3):
            sequential.counter("runs").inc()
            sequential.gauge("last_seed").set(task)

        parent = MetricsRegistry()
        for task in range(3):
            worker = MetricsRegistry()
            worker.counter("runs").inc()
            worker.gauge("last_seed").set(task)
            parent.merge(worker)
        assert parent.snapshot() == sequential.snapshot()

    def test_null_registry_merge_is_noop(self):
        null = NullRegistry()
        worker = MetricsRegistry()
        worker.counter("bits").inc(9)
        null.merge(worker)
        assert null.snapshot() == {}

    def test_merging_empty_registry_changes_nothing(self):
        parent = MetricsRegistry()
        parent.counter("bits").inc(2)
        before = parent.snapshot()
        parent.merge(MetricsRegistry())
        assert parent.snapshot() == before


# ---- session-level equivalence ---------------------------------------

_TIMING_KEYS = {"wall_seconds", "phase_seconds", "run_metrics", "package_version"}


def _strip_timing(obj):
    """Drop wall-clock-valued fields anywhere in a JSON document."""
    if isinstance(obj, dict):
        return {
            k: _strip_timing(v) for k, v in obj.items() if k not in _TIMING_KEYS
        }
    if isinstance(obj, list):
        return [_strip_timing(v) for v in obj]
    return obj


def _session_fingerprint(trace_dir):
    """(metrics snapshot, per-run-file stripped JSON lines) for a session."""
    manifest = json.loads((trace_dir / "manifest.json").read_text())
    runs = {}
    for path in sorted(trace_dir.glob("run-*.jsonl")):
        lines = [
            _strip_timing(json.loads(line))
            for line in path.read_text().splitlines()
            if line
        ]
        runs[path.name] = lines
    metrics = {
        k: v
        for k, v in manifest["metrics"].items()
        if v.get("type") == "counter" or v.get("type") == "gauge"
    }
    return metrics, runs


def _run_thm6(tmp_path, workers):
    out = tmp_path / f"w{workers}"
    with observe(trace_dir=out, label="thm6-merge-test"):
        exp_thm6_reduction(q_values=(25,), n=3, seeds=(1, 2), workers=workers)
    return out


class TestSessionMergeEquivalence:
    def test_parallel_session_equals_sequential(self, tmp_path):
        seq_dir = _run_thm6(tmp_path, workers=0)
        par_dir = _run_thm6(tmp_path, workers=2)

        seq_metrics, seq_runs = _session_fingerprint(seq_dir)
        par_metrics, par_runs = _session_fingerprint(par_dir)
        # run-NNNN files: same names, same (timing-stripped) content
        assert sorted(seq_runs) == sorted(par_runs)
        for name in seq_runs:
            assert par_runs[name] == seq_runs[name], name
        # deterministic metrics (counters, gauges) agree exactly
        assert par_metrics == seq_metrics

    def test_audit_passes_on_merged_ledger(self, tmp_path):
        par_dir = _run_thm6(tmp_path, workers=2)
        reports, skipped, exit_code = audit_path(par_dir)
        assert exit_code == 0
        assert reports and all(r.ok for r in reports)

    def test_manifest_records_worker_count(self, tmp_path):
        par_dir = _run_thm6(tmp_path, workers=2)
        seq_dir = _run_thm6(tmp_path, workers=0)
        assert json.loads((par_dir / "manifest.json").read_text())["workers"] == 2
        assert json.loads((seq_dir / "manifest.json").read_text())["workers"] == 0
