"""JSONL export round-trips and ExecutionTrace accounting properties.

The satellite requirements made explicit: ``total_bits()`` equals both
the sum over ``bits_by_node()`` and the sum of per-record
``total_bits``, and ``edge_schedule()`` survives a JSONL round trip
losslessly — property-based over randomized traces and payloads.
"""

from __future__ import annotations

import json
import pathlib
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import bit_size
from repro.obs.export import (
    decode_payload,
    encode_payload,
    read_trace_jsonl,
    write_trace_jsonl,
)
from repro.obs.manifest import RunManifest
from repro.sim.trace import ExecutionTrace, RoundRecord

# ----------------------------------------------------------------------
# strategies
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-(2**70), 2**70),
    st.floats(allow_nan=False),
    st.text(max_size=12),
    st.binary(max_size=12),
)

payloads = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.tuples(children, children),
        st.lists(children, max_size=3),
        st.frozensets(scalars, max_size=3),
    ),
    max_leaves=8,
)


@st.composite
def traces(draw):
    """A structurally valid ExecutionTrace over a small node set."""
    n = draw(st.integers(2, 6))
    ids = list(range(1, n + 1))
    num_rounds = draw(st.integers(0, 6))
    trace = ExecutionTrace(num_nodes=n)
    for r in range(1, num_rounds + 1):
        possible_edges = [(u, v) for i, u in enumerate(ids) for v in ids[i + 1 :]]
        edges = frozenset(draw(st.lists(st.sampled_from(possible_edges), max_size=6)))
        senders = draw(st.lists(st.sampled_from(ids), max_size=n, unique=True))
        sends = {}
        for uid in senders:
            payload = draw(st.one_of(st.integers(0, 100), st.tuples(st.integers(0, 9))))
            sends[uid] = payload
        bits = {uid: bit_size(p) for uid, p in sends.items()}
        receivers = frozenset(uid for uid in ids if uid not in sends)
        delivered = {
            uid: sum(1 for (a, b) in edges if uid in (a, b) and (a + b - uid) in sends)
            for uid in receivers
        }
        trace.append(
            RoundRecord(
                round=r,
                edges=edges,
                sends=sends,
                bits=bits,
                receivers=receivers,
                delivered=delivered,
            )
        )
    if num_rounds and draw(st.booleans()):
        trace.termination_round = num_rounds
        trace.outputs = {uid: draw(st.integers(0, 5)) for uid in ids}
    return trace


# ----------------------------------------------------------------------
class TestPayloadCodec:
    @given(payloads)
    @settings(max_examples=120)
    def test_codec_round_trips_payload_algebra(self, payload):
        encoded = encode_payload(payload)
        json.dumps(encoded)  # must be JSON-serializable as-is
        assert decode_payload(encoded) == payload
        assert type(decode_payload(encoded)) is type(payload)

    def test_tuple_list_distinction_preserved(self):
        assert decode_payload(encode_payload((1, 2))) == (1, 2)
        assert decode_payload(encode_payload([1, 2])) == [1, 2]
        assert decode_payload(encode_payload((True, 1))) == (True, 1)
        back = decode_payload(encode_payload((True, 1)))
        assert isinstance(back[0], bool) and not isinstance(back[1], bool)

    def test_unknown_object_degrades_to_repr(self):
        class Weird:
            def __repr__(self):
                return "Weird()"

        assert decode_payload(encode_payload(Weird())) == "Weird()"


class TestTraceAccounting:
    @given(traces())
    @settings(max_examples=60)
    def test_total_bits_identities(self, trace):
        assert trace.total_bits() == sum(trace.bits_by_node().values())
        assert trace.total_bits() == sum(rec.total_bits for rec in trace)

    @given(traces())
    @settings(max_examples=40)
    def test_edge_schedule_round_trips_losslessly(self, trace):
        with tempfile.TemporaryDirectory() as d:
            path = pathlib.Path(d) / "run.jsonl"
            write_trace_jsonl(trace, path)
            back = read_trace_jsonl(path).trace
        assert back.edge_schedule() == trace.edge_schedule()

    @given(traces())
    @settings(max_examples=40)
    def test_full_trace_round_trip(self, trace):
        with tempfile.TemporaryDirectory() as d:
            path = pathlib.Path(d) / "run.jsonl"
            manifest = RunManifest(seed=7, num_nodes=trace.num_nodes, adversary="Test")
            write_trace_jsonl(trace, path, manifest=manifest)
            run = read_trace_jsonl(path)
        back = run.trace
        assert back.num_nodes == trace.num_nodes
        assert back.rounds == trace.rounds
        assert back.termination_round == trace.termination_round
        assert back.outputs == trace.outputs
        assert back.total_bits() == trace.total_bits()
        assert back.bits_by_node() == trace.bits_by_node()
        for a, b in zip(back, trace):
            assert a.round == b.round
            assert a.edges == b.edges
            assert a.sends == b.sends
            assert a.bits == b.bits
            assert a.receivers == b.receivers
            assert a.delivered == b.delivered
        assert run.manifest.seed == 7 and run.manifest.adversary == "Test"
