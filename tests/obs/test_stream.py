"""Streaming telemetry (PR 7): events.jsonl, checkpoints, resource
sampling, partial sessions, and the benchmark history store.

The load-bearing properties:

* **streaming is free of semantics** — a streamed session produces
  bit-identical trace fingerprints and the same deterministic metric
  counters as an unstreamed one (a Hypothesis property over seeds);
* **crash-safety** — the event stream is a valid completed prefix at
  every point: dropping the clean-close artifacts (manifest.json,
  spans.jsonl, session-close) still loads under ``inspect``/``profile``
  with a synthesized PARTIAL manifest, and the spans reconstructed from
  events exactly match the recorder's;
* **trend analysis** — ``bench-history`` flags the injected regression
  against a median-of-last-K window and nothing else.
"""

from __future__ import annotations

import json
import os
import pathlib
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.check import trace_fingerprint
from repro.network.adversaries import RandomConnectedAdversary
from repro.obs import observe
from repro.obs.export import read_trace_jsonl
from repro.obs.history import (
    DEFAULT_WINDOW,
    MIN_ENTRIES,
    analyze_history,
    append_history,
    read_history,
    record_from_result,
    render_history,
    sparkline,
)
from repro.obs.inspect import inspect_session
from repro.obs.manifest import MANIFEST_FILENAME, collect_provenance
from repro.obs.profile import profile_session, render_profile
from repro.obs.resource import (
    RESOURCE_FILENAME,
    ResourceSampler,
    read_resource_jsonl,
    resolve_interval,
    sample_resources,
    summarize_resources,
)
from repro.obs.spans import session_spans
from repro.obs.stream import (
    CHECKPOINT_FILENAME,
    EVENTS_FILENAME,
    STREAM_ENV,
    EventStream,
    is_partial_session,
    load_checkpoint,
    load_session_manifest,
    read_events_jsonl,
    resolve_stream,
    spans_from_events,
    stream_progress_totals,
    synthesize_manifest,
    write_checkpoint,
)
from repro.protocols.flooding import TokenFloodNode
from repro.sim.config import RunConfig
from repro.sim.factories import BoundNode, Constant, NodeSet
from repro.sim.runner import replicate


def _token_replicate(seeds, workers=0):
    ids = tuple(range(6))
    return replicate(
        NodeSet(ids, BoundNode(TokenFloodNode, source=ids[0])),
        Constant(RandomConnectedAdversary(list(ids), seed=7)),
        seeds=seeds,
        config=RunConfig(max_rounds=24, workers=workers, backend="reference"),
    )


def _streamed_session(tmp_path, seeds=(1, 2, 3), workers=0, name="stream"):
    d = tmp_path / name
    with observe(trace_dir=d, stream=True, resource_interval=0, label=name) as s:
        _token_replicate(seeds, workers=workers)
    return d, s


def _fingerprints(directory):
    return [
        trace_fingerprint(read_trace_jsonl(p).trace)
        for p in sorted(directory.glob("run-*.jsonl"))
    ]


def _counters(session):
    return {
        k: m["value"]
        for k, m in session.manifest.metrics.items()
        if m.get("type") == "counter" and not k.startswith("process_")
    }


class TestResolveStream:
    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(STREAM_ENV, "1")
        assert resolve_stream(False) is False
        monkeypatch.delenv(STREAM_ENV)
        assert resolve_stream(True) is True

    @pytest.mark.parametrize("raw,expect", [
        ("1", True), ("true", True), ("YES", True), ("on", True),
        ("0", False), ("", False), ("no", False),
    ])
    def test_env_truthiness(self, monkeypatch, raw, expect):
        monkeypatch.setenv(STREAM_ENV, raw)
        assert resolve_stream(None) is expect

    def test_default_off(self, monkeypatch):
        monkeypatch.delenv(STREAM_ENV, raising=False)
        assert resolve_stream(None) is False


class TestEventStream:
    def test_emit_sequences_and_close(self, tmp_path):
        path = tmp_path / EVENTS_FILENAME
        stream = EventStream(path, label="t")
        stream.emit("run-complete", run={"seed": 1})
        stream.emit("fault", fault={"kind": "x"})
        stream.close(runs=1)
        events = read_events_jsonl(path)
        assert [e["type"] for e in events] == [
            "stream-start", "run-complete", "fault", "session-close",
        ]
        assert [e["seq"] for e in events] == [1, 2, 3, 4]
        assert events[-1]["runs"] == 1

    def test_torn_tail_tolerated(self, tmp_path):
        path = tmp_path / EVENTS_FILENAME
        stream = EventStream(path)
        stream.emit("run-complete", run={"seed": 1})
        # simulate a kill mid-write: append half a JSON line
        with path.open("a") as fh:
            fh.write('{"type": "run-com')
        events = read_events_jsonl(path)
        assert [e["type"] for e in events] == ["stream-start", "run-complete"]

    def test_checkpoint_roundtrip_is_atomic(self, tmp_path):
        payload = {"runs": 3, "metrics": {"a": 1}}
        write_checkpoint(tmp_path, payload)
        assert load_checkpoint(tmp_path)["runs"] == 3
        # no stray tmp file left behind
        leftovers = [p for p in tmp_path.iterdir() if p.name != CHECKPOINT_FILENAME]
        assert leftovers == []

    def test_corrupt_checkpoint_loads_none(self, tmp_path):
        (tmp_path / CHECKPOINT_FILENAME).write_text("{nope")
        assert load_checkpoint(tmp_path) is None


class TestStreamingSession:
    def test_event_stream_written_and_manifest_links_it(self, tmp_path):
        d, session = _streamed_session(tmp_path)
        events = read_events_jsonl(d / EVENTS_FILENAME)
        types = Counter(e["type"] for e in events)
        assert types["stream-start"] == 1
        assert types["run-complete"] == 3
        assert types["session-close"] == 1
        manifest = load_session_manifest(d)
        assert not manifest.partial
        assert manifest.events_file == EVENTS_FILENAME
        assert manifest.provenance.get("hostname")
        assert manifest.provenance.get("python_version")

    def test_progress_events_streamed(self, tmp_path):
        d, _ = _streamed_session(tmp_path)
        events = read_events_jsonl(d / EVENTS_FILENAME)
        progress = [e for e in events if e["type"] == "progress"]
        assert {e["phase"] for e in progress} >= {"begin", "advance", "finish"}
        # live state: mid-flight the outermost scope shows done/total,
        # and the finish event pops it (a closed session tails to {})
        mid_flight = [e for e in events if not (
            e["type"] == "progress" and e["phase"] == "finish"
        )]
        totals = stream_progress_totals(mid_flight)
        assert totals[min(totals)] == (3, 3)
        assert stream_progress_totals(events) == {}

    def test_spans_from_events_match_recorder(self, tmp_path):
        d, _ = _streamed_session(tmp_path)
        rebuilt = spans_from_events(read_events_jsonl(d / EVENTS_FILENAME))
        recorded = session_spans(d)
        shape = lambda spans: Counter(  # noqa: E731
            (sp.kind, sp.name) for sp in spans if sp.kind != "event"
        )
        assert shape(rebuilt) == shape(recorded)

    def test_fault_events_stream_immediately(self, tmp_path):
        d = tmp_path / "faulty"
        with observe(trace_dir=d, stream=True, resource_interval=0) as session:
            session.record_fault({"fault": "worker-crash", "layer": "executor"})
            # before close: both faults.jsonl and the event stream have it
            faults_line = (d / "faults.jsonl").read_text().strip()
            assert json.loads(faults_line)["fault"] == "worker-crash"
            streamed = read_events_jsonl(d / EVENTS_FILENAME)
            assert any(e["type"] == "fault" for e in streamed)

    def test_unstreamed_session_writes_no_events(self, tmp_path):
        d = tmp_path / "plain"
        with observe(trace_dir=d, stream=False):
            _token_replicate((1,))
        assert not (d / EVENTS_FILENAME).exists()
        assert load_session_manifest(d).events_file is None

    def test_collect_sessions_never_stream(self, tmp_path, monkeypatch):
        from repro.obs.runtime import ObservationSession

        monkeypatch.setenv(STREAM_ENV, "1")
        session = ObservationSession(collect=True)
        assert not session.streaming
        session.close()


class TestStreamingEquivalence:
    @settings(max_examples=8, deadline=None)
    @given(seeds=st.lists(st.integers(0, 50), min_size=1, max_size=3, unique=True))
    def test_streaming_changes_nothing(self, tmp_path_factory, seeds):
        tmp = tmp_path_factory.mktemp("equiv")
        plain = tmp / "plain"
        with observe(trace_dir=plain, stream=False) as base:
            _token_replicate(tuple(seeds))
        streamed = tmp / "streamed"
        with observe(trace_dir=streamed, stream=True, resource_interval=0) as s:
            _token_replicate(tuple(seeds))
        assert _fingerprints(plain) == _fingerprints(streamed)
        assert _counters(base) == _counters(s)

    def test_workers_streaming_equivalence(self, tmp_path):
        plain = tmp_path / "plain"
        with observe(trace_dir=plain, stream=False) as base:
            _token_replicate((1, 2, 3), workers=0)
        streamed = tmp_path / "streamed"
        with observe(trace_dir=streamed, stream=True, resource_interval=0) as s:
            _token_replicate((1, 2, 3), workers=2)
        assert _fingerprints(plain) == _fingerprints(streamed)
        assert _counters(base) == _counters(s)

    def test_sampling_gauges_are_the_only_metric_delta(self, tmp_path):
        d = tmp_path / "sampled"
        with observe(trace_dir=d, stream=True, resource_interval=0.01) as s:
            _token_replicate((1,))
        extra = {
            k for k in s.manifest.metrics if k.startswith("process_")
        }
        assert extra <= {
            "process_rss_bytes", "process_cpu_percent", "process_gc_collections",
        }


def _make_partial(directory):
    """Turn a cleanly closed streamed session into a killed-looking one."""
    (directory / MANIFEST_FILENAME).unlink()
    (directory / "spans.jsonl").unlink(missing_ok=True)
    events = directory / EVENTS_FILENAME
    lines = events.read_text().splitlines()
    assert json.loads(lines[-1])["type"] == "session-close"
    events.write_text("\n".join(lines[:-1]) + "\n")


class TestPartialSession:
    def test_detection_and_synthesis(self, tmp_path):
        d, _ = _streamed_session(tmp_path)
        assert not is_partial_session(d)
        _make_partial(d)
        assert is_partial_session(d)
        manifest = load_session_manifest(d)
        assert manifest.partial
        assert len(manifest.runs) == 3
        # synthesized manifests are never persisted
        assert not (d / MANIFEST_FILENAME).exists()

    def test_inspect_marks_partial(self, tmp_path):
        d, _ = _streamed_session(tmp_path)
        _make_partial(d)
        report = inspect_session(d)
        assert report.partial
        text = report.render()
        assert "PARTIAL" in text
        assert "run-0001" in text

    def test_profile_reconstructs_spans(self, tmp_path):
        d, _ = _streamed_session(tmp_path)
        _make_partial(d)
        profile = profile_session(d)
        assert profile.partial
        assert profile.by_kind["run"].count == 3
        assert "PARTIAL" in render_profile(profile)

    def test_stale_checkpoint_never_shadows_fresher_events(self, tmp_path):
        d, session = _streamed_session(tmp_path)
        _make_partial(d)
        checkpoint = load_checkpoint(d)
        # rate limiting means the checkpoint may lag the event stream...
        assert checkpoint is not None
        assert checkpoint["runs"] <= session.num_runs
        # ...but runs are synthesized from events, aggregates from the
        # checkpoint's last write (recoverable, not zeroed)
        manifest = synthesize_manifest(d)
        assert len(manifest.runs) == session.num_runs == 3
        assert manifest.metrics
        assert manifest.label == "stream"

    def test_torn_run_file_skipped_with_note(self, tmp_path):
        d, _ = _streamed_session(tmp_path)
        _make_partial(d)
        torn = sorted(d.glob("run-*.jsonl"))[-1]
        torn.write_text(torn.read_text()[: 40])
        report = inspect_session(d)
        assert len(report.runs) == 2
        assert any(torn.name in note for note in report.skipped)

    def test_empty_dir_still_errors(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_session_manifest(tmp_path / "nothing-here")


class TestResourceSampler:
    def test_sample_resources_shape(self):
        sample = sample_resources()
        assert sample["cpu_seconds"] >= 0
        assert "gc_collections" in sample

    def test_sampler_writes_lines_and_gauges(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        heartbeats = []
        ticks = []
        sampler = ResourceSampler(
            tmp_path, registry=registry, interval=10,
            emit=lambda **p: heartbeats.append(p), on_tick=lambda: ticks.append(1),
        )
        sampler.sample_once()
        sampler.sample_once()
        sampler.stop()
        samples = read_resource_jsonl(tmp_path / RESOURCE_FILENAME)
        assert len(samples) == 2
        assert len(heartbeats) == 2 and len(ticks) == 2
        summary = summarize_resources(samples)
        assert summary["samples"] == 2

    def test_on_tick_exceptions_swallowed(self, tmp_path):
        def boom():
            raise RuntimeError("never takes the sweep down")

        sampler = ResourceSampler(tmp_path, interval=10, on_tick=boom)
        sampler.sample_once()  # must not raise
        sampler.stop()
        # the sample itself still landed before the tick blew up
        assert len(read_resource_jsonl(tmp_path / RESOURCE_FILENAME)) == 1

    def test_resolve_interval(self, monkeypatch):
        from repro.errors import ConfigurationError
        from repro.obs.resource import DEFAULT_INTERVAL, RESOURCE_INTERVAL_ENV

        monkeypatch.delenv(RESOURCE_INTERVAL_ENV, raising=False)
        assert resolve_interval(None) == DEFAULT_INTERVAL
        assert resolve_interval(0.5) == 0.5
        monkeypatch.setenv(RESOURCE_INTERVAL_ENV, "2.5")
        assert resolve_interval(None) == 2.5
        monkeypatch.setenv(RESOURCE_INTERVAL_ENV, "nope")
        with pytest.raises(ConfigurationError):
            resolve_interval(None)

    def test_summarize_empty(self):
        assert summarize_resources([]) is None


def _history_record(exp="EXP-X", wall=1.0, t=0, **summary):
    return {
        "exp_id": exp,
        "unix_time": t,
        "provenance": collect_provenance(),
        "backend": "reference",
        "timings": {"wall_seconds": wall},
        "summary": summary or {"n": 4},
    }


class TestHistory:
    def test_record_from_result_fields(self):
        record = record_from_result({
            "exp_id": "EXP-T6",
            "timings": {"wall_seconds": 0.5, "phase_seconds": {"delivery": 0.1}},
            "summary": {"runs": 4, "title": "not-a-number", "ok": True},
        }, timestamp=123.0)
        assert record["exp_id"] == "EXP-T6"
        assert record["unix_time"] == 123.0
        assert record["summary"] == {"runs": 4}  # strings and bools dropped
        assert record["provenance"]["hostname"]

    def test_append_and_read_roundtrip(self, tmp_path):
        path = tmp_path / "deep" / "history.jsonl"
        append_history(path, _history_record(t=1))
        append_history(path, _history_record(t=2))
        with path.open("a") as fh:
            fh.write('{"torn')  # killed mid-append
        records = read_history(path)
        assert [r["unix_time"] for r in records] == [1, 2]

    def test_insufficient_entries_pass(self):
        records = [_history_record(t=i) for i in range(MIN_ENTRIES - 1)]
        trends, code = analyze_history(records)
        assert code == 0
        assert all(t.status == "insufficient" for t in trends)

    def test_steady_history_is_ok(self):
        records = [_history_record(wall=1.0, t=i) for i in range(6)]
        trends, code = analyze_history(records)
        assert code == 0
        wall = next(t for t in trends if t.metric == "wall")
        assert wall.status == "ok" and wall.window_median == 1.0

    def test_regression_flags_exit_1(self):
        records = [_history_record(wall=1.0, t=i) for i in range(5)]
        records.append(_history_record(wall=2.0, t=5))
        trends, code = analyze_history(records)
        assert code == 1
        assert next(t for t in trends if t.metric == "wall").status == "regression"

    def test_window_limits_comparison(self):
        # old slowness outside the window must not mask a regression
        records = [_history_record(wall=5.0, t=0)]
        records += [_history_record(wall=1.0, t=i) for i in range(1, 7)]
        records.append(_history_record(wall=2.0, t=7))
        trends, code = analyze_history(records, window=3)
        assert code == 1

    def test_improvement_is_not_a_regression(self):
        records = [_history_record(wall=2.0, t=i) for i in range(5)]
        records.append(_history_record(wall=1.0, t=5))
        trends, code = analyze_history(records)
        assert code == 0
        assert next(t for t in trends if t.metric == "wall").status == "improved"

    def test_summary_drift_flags(self):
        records = [_history_record(t=i, rows=7) for i in range(4)]
        records.append(_history_record(t=4, rows=8))
        trends, code = analyze_history(records)
        assert code == 1
        drifted = next(t for t in trends if t.metric == "summary[rows]")
        assert drifted.status == "drift"

    def test_experiments_trend_independently(self):
        records = [_history_record(exp="EXP-A", wall=1.0, t=i) for i in range(4)]
        records += [_history_record(exp="EXP-B", wall=3.0, t=i) for i in range(4)]
        trends, code = analyze_history(records)
        assert code == 0
        assert {t.exp_id for t in trends} == {"EXP-A", "EXP-B"}

    def test_empty_history_exit_2(self):
        trends, code = analyze_history([])
        assert trends == [] and code == 2

    def test_sparkline(self):
        line = sparkline([0.0, 1.0, 2.0, 3.0])
        assert line[0] == "▁" and line[-1] == "█"
        assert sparkline([1.0, 1.0, 1.0]) == "▁▁▁"
        assert sparkline([]) == ""

    def test_render_names_the_window(self):
        records = [_history_record(wall=1.0, t=i) for i in range(6)]
        trends, _ = analyze_history(records, window=DEFAULT_WINDOW)
        text = render_history(trends, window=DEFAULT_WINDOW, threshold=0.25)
        assert "EXP-X" in text and "wall" in text
