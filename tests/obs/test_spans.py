"""Spans, progress, profiling, and the HTML report (PR 6).

The load-bearing properties:

* **merge equivalence** — a ``REPRO_WORKERS=2`` run reassembles, at
  ingest, into a span tree with exactly the same shape (kind/name
  multiset, single root, no orphans) as the sequential run;
* **zero cost without a session** — no ambient session means ``span``
  yields ``None``, records nothing, and leaves engine results
  bit-identical (trace fingerprints unchanged);
* **v2 compatibility** — a session without ``spans.jsonl`` still
  inspects, audits, and profiles (to an empty profile) cleanly.
"""

from __future__ import annotations

import io
import json
import pathlib
from collections import Counter

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults.check import trace_fingerprint
from repro.network.adversaries import RandomConnectedAdversary
from repro.obs import observe
from repro.obs.profile import profile_session, render_profile
from repro.obs.progress import ProgressReporter, StderrTicker, progress_scope
from repro.obs.report import render_report, write_report
from repro.obs.runtime import current_session
from repro.obs.spans import (
    SPANS_FILENAME,
    Span,
    SpanRecorder,
    current_span,
    read_spans_jsonl,
    session_spans,
    span,
    span_event,
    write_spans_jsonl,
)
from repro.protocols.flooding import GossipMaxNode, TokenFloodNode
from repro.sim.coins import CoinSource
from repro.sim.config import RunConfig
from repro.sim.engine import SynchronousEngine
from repro.sim.factories import BoundNode, Constant, NodeSet
from repro.sim.runner import replicate


def run_gossip(n=6, rounds=8, seed=5):
    ids = list(range(1, n + 1))
    nodes = {u: GossipMaxNode(u) for u in ids}
    eng = SynchronousEngine(
        nodes, RandomConnectedAdversary(ids, seed=3), CoinSource(seed)
    )
    eng.run(rounds, stop_on_termination=False)
    return eng


def _token_replicate(seeds, workers):
    ids = tuple(range(6))
    return replicate(
        NodeSet(ids, BoundNode(TokenFloodNode, source=ids[0])),
        Constant(RandomConnectedAdversary(list(ids), seed=7)),
        seeds=seeds,
        config=RunConfig(max_rounds=24, workers=workers, backend="reference"),
    )


def _shape(spans):
    """Multiset of (kind, name) over the non-event spans."""
    return Counter((sp.kind, sp.name) for sp in spans if sp.kind != "event")


class TestAmbientSpans:
    def test_no_session_yields_none_and_records_nothing(self):
        assert current_session() is None
        with span("cell", "outside") as sp:
            assert sp is None
        assert current_span() is None
        span_event("nothing")  # must not raise

    def test_nesting_parents_and_tags(self):
        with observe() as session:
            with span("sweep", "outer", layers=2) as outer:
                with span("cell", "inner", n=4) as inner:
                    assert current_span() is inner
                    span_event("ping", detail="x")
                assert current_span() is outer
        spans = session.spans.spans
        by_name = {sp.name: sp for sp in spans}
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["inner"].tags == {"n": 4}
        assert by_name["outer"].tags == {"layers": 2}
        assert by_name["ping"].kind == "event"
        assert by_name["ping"].parent_id == by_name["inner"].span_id
        assert all(sp.wall_seconds >= 0.0 for sp in spans)

    def test_error_status_on_exception(self):
        with observe() as session:
            with pytest.raises(RuntimeError):
                with span("cell", "boom"):
                    raise RuntimeError("boom")
        (sp,) = session.spans.spans
        assert sp.status == "error"

    def test_engine_runs_synthesize_run_and_phase_spans(self):
        with observe() as session:
            run_gossip(rounds=5)
        spans = session.spans.spans
        kinds = Counter(sp.kind for sp in spans)
        assert kinds["run"] == 1
        assert kinds["phase"] == 5  # the engine's five phases
        run_sp = next(sp for sp in spans if sp.kind == "run")
        assert run_sp.tags["backend"] == "reference"
        assert all(
            sp.parent_id == run_sp.span_id
            for sp in spans
            if sp.kind == "phase"
        )


class TestZeroCostWithoutSession:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_fingerprint_unchanged_by_observation(self, seed):
        bare = run_gossip(seed=seed)
        with observe():
            observed = run_gossip(seed=seed)
        assert trace_fingerprint(bare.trace) == trace_fingerprint(observed.trace)

    def test_replicate_results_unchanged_by_observation(self):
        bare = _token_replicate((1, 2), workers=0)
        with observe() as session:
            observed = _token_replicate((1, 2), workers=0)
        assert [trace_fingerprint(r.trace) for r in bare.runs] == [
            trace_fingerprint(r.trace) for r in observed.runs
        ]
        assert _shape(session.spans.spans)[("replicate", "replicate")] == 1


class TestMergedParallelEqualsSequential:
    """The tentpole property: worker spans graft back losslessly."""

    @settings(
        max_examples=3,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        seeds=st.lists(
            st.integers(min_value=0, max_value=50),
            min_size=2, max_size=4, unique=True,
        )
    )
    def test_replicate_span_tree_shape_identical(self, seeds):
        seeds = tuple(seeds)
        with observe() as seq_session:
            _token_replicate(seeds, workers=0)
        with observe() as par_session:
            _token_replicate(seeds, workers=2)
        seq = seq_session.spans.spans
        par = par_session.spans.spans
        assert _shape(seq) == _shape(par)
        # exact counts: one run + five phases per seed, one replicate root
        kinds = Counter(sp.kind for sp in par)
        assert kinds["replicate"] == 1
        assert kinds["run"] == len(seeds)
        assert kinds["phase"] == 5 * len(seeds)
        for spans in (seq, par):
            ids = {sp.span_id for sp in spans}
            roots = [sp for sp in spans if sp.parent_id is None]
            assert [(r.kind, r.name) for r in roots] == [("replicate", "replicate")]
            assert all(
                sp.parent_id in ids for sp in spans if sp.parent_id is not None
            )
            assert all(sp.wall_seconds >= 0.0 for sp in spans)

    def test_sweep_driver_tree_shape_identical(self, tmp_path):
        from repro.analysis.experiments.protocols import exp_known_d_upper_bounds

        with observe(trace_dir=tmp_path / "seq") as seq_session:
            exp_known_d_upper_bounds(sizes=(8,), seeds=(21,), workers=0)
        with observe(trace_dir=tmp_path / "par") as par_session:
            exp_known_d_upper_bounds(sizes=(8,), seeds=(21,), workers=2)
        seq = session_spans(tmp_path / "seq")
        par = session_spans(tmp_path / "par")
        assert _shape(seq) == _shape(par)
        assert seq_session.num_runs == par_session.num_runs
        roots = [sp for sp in par if sp.parent_id is None]
        assert [(r.kind, r.name) for r in roots] == [("sweep", "EXP-UB")]


class TestPersistence:
    def test_roundtrip_and_format_version(self, tmp_path):
        with observe() as session:
            with span("cell", "c", n=4):
                pass
        path = tmp_path / SPANS_FILENAME
        write_spans_jsonl(path, session.spans.spans)
        header = json.loads(path.read_text().splitlines()[0])
        assert header["format_version"] == 3
        loaded = read_spans_jsonl(path)
        assert [sp.as_dict() for sp in loaded] == [
            sp.as_dict() for sp in session.spans.spans
        ]

    def test_newer_format_version_rejected(self, tmp_path):
        path = tmp_path / SPANS_FILENAME
        path.write_text(json.dumps({"type": "manifest", "format_version": 99}) + "\n")
        with pytest.raises(ValueError, match="format_version"):
            read_spans_jsonl(path)

    def test_session_writes_spans_sidecar(self, tmp_path):
        with observe(trace_dir=tmp_path) as session:
            run_gossip(rounds=4)
        assert (tmp_path / SPANS_FILENAME).is_file()
        assert session.manifest.spans_file == SPANS_FILENAME
        assert _shape(session_spans(tmp_path)) == _shape(session.spans.spans)


class TestV2SessionCompat:
    """Sessions persisted before spans existed keep working everywhere."""

    @pytest.fixture()
    def v2_session(self, tmp_path):
        with observe(trace_dir=tmp_path):
            run_gossip(rounds=4)
        (tmp_path / SPANS_FILENAME).unlink()
        manifest_path = tmp_path / "manifest.json"
        data = json.loads(manifest_path.read_text())
        data.pop("spans_file", None)
        data.pop("format_version", None)
        manifest_path.write_text(json.dumps(data))
        return tmp_path

    def test_loads_inspects_audits(self, v2_session):
        from repro.obs.audit import audit_path
        from repro.obs.inspect import inspect_session
        from repro.obs.manifest import SessionManifest

        manifest = SessionManifest.load(v2_session / "manifest.json")
        assert manifest.format_version == 2
        assert manifest.spans_file is None
        report = inspect_session(v2_session)
        assert "run-0001.jsonl" in report.render()
        # no reduction runs: audit reports "nothing to audit" (2), the
        # same as it would for this session before spans existed
        _reports, skipped, code = audit_path(v2_session)
        assert code == 2
        assert skipped

    def test_profiles_to_empty(self, v2_session):
        profile = profile_session(v2_session)
        assert profile.spans == []
        assert "no spans recorded" in render_profile(profile)

    def test_report_renders_without_spans(self, v2_session):
        html = render_report(v2_session)
        assert "No spans recorded" in html


class TestProfile:
    def test_sweep_attribution_at_least_95_percent(self, tmp_path):
        from repro.analysis.experiments.protocols import exp_known_d_upper_bounds

        with observe(trace_dir=tmp_path):
            exp_known_d_upper_bounds(sizes=(8, 16), seeds=(21,), workers=0)
        profile = profile_session(tmp_path)
        assert profile.coverage is not None
        assert profile.coverage >= 0.95
        assert profile.hottest_cells
        # one rollup per backend actually used (reference, or batch when
        # the suite runs under REPRO_BACKEND=batch)
        assert profile.by_backend
        assert all(r.count > 0 for r in profile.by_backend.values())
        text = render_profile(profile)
        assert "hottest cells" in text
        assert "coverage:" in text

    def test_self_time_never_exceeds_total(self, tmp_path):
        with observe(trace_dir=tmp_path):
            _token_replicate((1, 2), workers=0)
        profile = profile_session(tmp_path)
        for sp in profile.spans:
            if sp.kind == "event":
                continue
            assert 0.0 <= profile.self_seconds[sp.span_id] <= sp.wall_seconds + 1e-9


class TestReport:
    def test_html_is_self_contained(self, tmp_path):
        with observe(trace_dir=tmp_path / "sess"):
            run_gossip(rounds=4)
        out = write_report(tmp_path / "sess", tmp_path / "report.html")
        html = out.read_text()
        assert html.startswith("<!DOCTYPE html>")
        for forbidden in ("http://", "https://", "<script", "src="):
            assert forbidden not in html
        for section in ("Provenance", "Time by span kind", "Runs"):
            assert section in html

    def test_baseline_deltas_section(self, tmp_path):
        for name in ("base", "cur"):
            with observe(trace_dir=tmp_path / name):
                run_gossip(rounds=4)
        html = render_report(tmp_path / "cur", baseline=tmp_path / "base")
        assert "Deltas vs baseline" in html
        assert "wall_seconds" in html

    def test_escapes_user_controlled_strings(self, tmp_path):
        with observe(trace_dir=tmp_path, label="<script>alert(1)</script>"):
            run_gossip(rounds=3)
        html = render_report(tmp_path)
        assert "<script>alert(1)</script>" not in html
        assert "&lt;script&gt;" in html


class _Recorder(ProgressReporter):
    def __init__(self):
        self.begins = []
        self.advances = []
        self.events = []
        self.finishes = 0

    def begin(self, total, unit="tasks", label=None):
        self.begins.append((total, unit, label))

    def advance(self, label=None, status="ok"):
        self.advances.append((label, status))

    def event(self, kind, detail):
        self.events.append((kind, detail))

    def finish(self):
        self.finishes += 1


class TestProgressReporting:
    def test_replicate_inline_advances_per_seed(self):
        rec = _Recorder()
        with progress_scope(rec):
            _token_replicate((1, 2, 3), workers=0)
        assert rec.begins and rec.begins[0][0] == 3
        assert len(rec.advances) == 3
        assert rec.finishes == len(rec.begins)

    def test_replicate_pooled_advances_per_task(self):
        rec = _Recorder()
        with progress_scope(rec):
            _token_replicate((1, 2), workers=2)
        assert sum(total for total, _, _ in rec.begins) >= 2
        assert len(rec.advances) >= 2
        assert rec.finishes == len(rec.begins)

    def test_no_reporter_is_silent(self, capsys):
        _token_replicate((1,), workers=0)
        captured = capsys.readouterr()
        assert captured.err == ""


class TestStderrTicker:
    def _ticker(self):
        stream = io.StringIO()
        clock_state = {"t": 0.0}

        def clock():
            clock_state["t"] += 1.0
            return clock_state["t"]

        return StderrTicker(stream, min_interval=0.0, clock=clock), stream

    def test_renders_progress_and_final_line(self):
        ticker, stream = self._ticker()
        ticker.begin(2, unit="cells", label="EXP-X")
        ticker.advance()
        ticker.advance()
        ticker.finish()
        text = stream.getvalue()
        assert "[EXP-X] 2/2 cells" in text
        assert text.endswith("\n")

    def test_inner_scopes_do_not_drive_the_line(self):
        ticker, stream = self._ticker()
        ticker.begin(2, unit="cells", label="outer")
        ticker.begin(10, unit="runs", label="inner")  # nested replicate
        ticker.advance()  # inner completion: ignored by the display
        ticker.finish()
        ticker.advance()  # outer completion: counted
        ticker.finish()
        assert "1/2 cells" in stream.getvalue()
        assert "10" not in stream.getvalue().replace("10.0", "")

    def test_events_print_as_lines(self):
        ticker, stream = self._ticker()
        ticker.begin(1, label="EXP-X")
        ticker.event("batch-fallback", "adaptive adversary")
        ticker.advance()
        ticker.finish()
        assert "[EXP-X] batch-fallback: adaptive adversary\n" in stream.getvalue()


class TestCLI:
    def test_profile_command(self, tmp_path, capsys):
        from repro.cli import main

        with observe(trace_dir=tmp_path):
            run_gossip(rounds=4)
        assert main(["profile", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "by span kind" in out
        assert "coverage:" in out

    def test_profile_v2_session(self, tmp_path, capsys):
        from repro.cli import main

        with observe(trace_dir=tmp_path):
            run_gossip(rounds=4)
        (tmp_path / SPANS_FILENAME).unlink()
        assert main(["profile", str(tmp_path)]) == 0
        assert "no spans recorded" in capsys.readouterr().out

    def test_profile_wrong_arity(self, capsys):
        from repro.cli import main

        assert main(["profile"]) == 2

    def test_report_command(self, tmp_path, capsys):
        from repro.cli import main

        with observe(trace_dir=tmp_path / "sess"):
            run_gossip(rounds=4)
        out_file = tmp_path / "report.html"
        assert main(["report", str(tmp_path / "sess"), "--out", str(out_file)]) == 0
        assert out_file.read_text().startswith("<!DOCTYPE html>")

    def test_report_requires_out(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["report", str(tmp_path)]) == 2

    def test_bench_diff_tolerance_and_gate(self, tmp_path, capsys):
        from repro.cli import main

        old, new = tmp_path / "old", tmp_path / "new"
        old.mkdir(), new.mkdir()
        payload = {"exp_id": "EXP-X", "rows": [], "summary": {},
                   "timings": {"wall_seconds": 1.0}}
        (old / "EXP-X.json").write_text(json.dumps(payload))
        slow = dict(payload, timings={"wall_seconds": 1.5})
        (new / "EXP-X.json").write_text(json.dumps(slow))
        # +50% > default 25% threshold: regression
        assert main(["bench-diff", str(old), str(new)]) == 1
        # per-metric tolerance waives it
        assert main(["bench-diff", str(old), str(new),
                     "--tolerance", "wall=0.6"]) == 0
        # malformed tolerance: usage error
        assert main(["bench-diff", str(old), str(new),
                     "--tolerance", "wall"]) == 2
        # gate mode fails an experiment with no baseline
        (new / "EXP-Y.json").write_text(json.dumps(dict(payload, exp_id="EXP-Y")))
        assert main(["bench-diff", str(old), str(new),
                     "--tolerance", "wall=0.6"]) == 0
        assert main(["bench-diff", str(old), str(new), "--tolerance", "wall=0.6",
                     "--fail-on-regression"]) == 1

    def test_speedup_skip_note_on_cpu_count_mismatch(self, tmp_path, capsys):
        from repro.cli import main

        old, new = tmp_path / "old", tmp_path / "new"
        old.mkdir(), new.mkdir()
        base = {"exp_id": "EXP-PAR", "rows": [], "summary": {}}
        (old / "EXP-PAR.json").write_text(json.dumps(
            dict(base, timings={"wall_seconds": 1.0, "speedup": 3.0, "cpu_count": 4})
        ))
        (new / "EXP-PAR.json").write_text(json.dumps(
            dict(base, timings={"wall_seconds": 1.0, "speedup": 1.0, "cpu_count": 1})
        ))
        assert main(["bench-diff", str(old), str(new)]) == 0
        out = capsys.readouterr().out
        assert "speedup comparison skipped" in out
        assert "cpu_count 4 -> 1" in out


class TestParseTolerances:
    def test_parses_scoped_and_plain(self):
        from repro.obs.benchdiff import parse_tolerances

        assert parse_tolerances(["wall=0.4", "EXP-SUB:speedup=0.2"]) == {
            "wall": 0.4,
            "EXP-SUB:speedup": 0.2,
        }
        assert parse_tolerances(None) == {}

    @pytest.mark.parametrize("bad", ["wall", "=0.2", "wall=abc", "wall=-0.1"])
    def test_rejects_malformed(self, bad):
        from repro.obs.benchdiff import parse_tolerances

        with pytest.raises(ValueError):
            parse_tolerances([bad])
