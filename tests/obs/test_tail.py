"""``repro tail``: following a live session's event stream.

The renderer is exercised on synthetic events; the follower is
exercised with injected clock/sleep hooks so a "live" writer is just a
callback appending lines between polls — no real time passes.
"""

from __future__ import annotations

import io
import json
import pathlib

import pytest

from repro.obs import observe
from repro.obs.manifest import MANIFEST_FILENAME
from repro.obs.stream import EVENTS_FILENAME
from repro.obs.tail import TailRenderer, iter_event_lines, tail_session


def _line(type_, seq=0, elapsed=0.0, **payload):
    return json.dumps({"type": type_, "seq": seq, "elapsed": elapsed, **payload})


def _write(path, *lines, mode="a"):
    with path.open(mode) as fh:
        for raw in lines:
            fh.write(raw + "\n")


class FakeTimer:
    """Deterministic clock + sleep: each sleep advances the clock and
    runs an optional callback (the 'writer')."""

    def __init__(self, on_sleep=None):
        self.now = 0.0
        self.sleeps = 0
        self.on_sleep = on_sleep

    def clock(self):
        return self.now

    def sleep(self, seconds):
        self.now += seconds
        self.sleeps += 1
        if self.on_sleep is not None:
            self.on_sleep(self.sleeps)


class TestIterEventLines:
    def test_no_follow_reads_to_eof(self, tmp_path):
        path = tmp_path / EVENTS_FILENAME
        _write(path, _line("stream-start"), _line("run-complete", seq=1))
        events = list(iter_event_lines(path, follow=False))
        assert [e["type"] for e in events] == ["stream-start", "run-complete"]

    def test_stops_at_session_close(self, tmp_path):
        path = tmp_path / EVENTS_FILENAME
        _write(path, _line("session-close"), _line("never-seen"))
        events = list(iter_event_lines(path, follow=False))
        assert [e["type"] for e in events] == ["session-close"]

    def test_torn_tail_dropped(self, tmp_path):
        path = tmp_path / EVENTS_FILENAME
        _write(path, _line("stream-start"))
        with path.open("a") as fh:
            fh.write('{"type": "run-co')  # killed mid-write
        events = list(iter_event_lines(path, follow=False))
        assert [e["type"] for e in events] == ["stream-start"]

    def test_follow_picks_up_lines_written_between_polls(self, tmp_path):
        path = tmp_path / EVENTS_FILENAME
        _write(path, _line("stream-start"))

        def writer(nth_sleep):
            if nth_sleep == 2:
                _write(path, _line("run-complete", seq=1))
            if nth_sleep == 4:
                _write(path, _line("session-close", seq=2))

        timer = FakeTimer(on_sleep=writer)
        events = list(iter_event_lines(
            path, follow=True, poll=0.2, timeout=60,
            clock=timer.clock, sleep=timer.sleep,
        ))
        assert [e["type"] for e in events] == [
            "stream-start", "run-complete", "session-close",
        ]

    def test_mid_line_write_buffered_until_newline(self, tmp_path):
        path = tmp_path / EVENTS_FILENAME
        half = _line("run-complete", seq=1)

        def writer(nth_sleep):
            if nth_sleep == 1:
                with path.open("a") as fh:
                    fh.write(half[:10])
            if nth_sleep == 2:
                with path.open("a") as fh:
                    fh.write(half[10:] + "\n")
                _write(path, _line("session-close", seq=2))

        _write(path, _line("stream-start"))
        timer = FakeTimer(on_sleep=writer)
        events = list(iter_event_lines(
            path, follow=True, poll=0.2, timeout=60,
            clock=timer.clock, sleep=timer.sleep,
        ))
        assert [e["type"] for e in events] == [
            "stream-start", "run-complete", "session-close",
        ]

    def test_timeout_drains_flushed_tail(self, tmp_path):
        # lines flushed just before the writer died must still be seen
        path = tmp_path / EVENTS_FILENAME
        _write(path, _line("stream-start"))

        def writer(nth_sleep):
            if nth_sleep == 1:
                _write(path, _line("run-complete", seq=1))
                timer.now += 100  # then the writer dies: stream goes quiet

        timer = FakeTimer(on_sleep=writer)
        events = list(iter_event_lines(
            path, follow=True, poll=0.2, timeout=5,
            clock=timer.clock, sleep=timer.sleep,
        ))
        assert [e["type"] for e in events] == ["stream-start", "run-complete"]

    def test_stop_callback_ends_follow(self, tmp_path):
        path = tmp_path / EVENTS_FILENAME
        _write(path, _line("stream-start"))
        timer = FakeTimer()
        events = list(iter_event_lines(
            path, follow=True, poll=0.2, timeout=60,
            clock=timer.clock, sleep=timer.sleep, stop=lambda: True,
        ))
        assert [e["type"] for e in events] == ["stream-start"]


class TestTailRenderer:
    def test_run_fault_and_close_lines(self):
        r = TailRenderer()
        assert not r.render({"type": "heartbeat"})  # quiet unless verbose
        run = {"adversary": "Spooler", "num_nodes": 8, "seed": 3,
               "backend": "reference", "wall_seconds": 0.01}
        (line,) = r.render({"type": "run-complete", "run": run})
        assert "Spooler" in line and "n=8" in line and "seed=3" in line
        (line,) = r.render({"type": "fault",
                            "fault": {"fault": "worker-crash", "layer": "executor"}})
        assert "worker-crash" in line
        (line,) = r.render({"type": "session-close", "runs": 1,
                            "wall_seconds": 0.5})
        assert "closed" in line
        assert r.closed and "closed cleanly" in r.summary()

    def test_degraded_retry_from_span(self):
        r = TailRenderer()
        lines = r.render({
            "type": "degraded-retry",
            "span": {"kind": "event", "name": "degraded-retry",
                     "tags": {"kind": "timeout", "label": "seed=2", "attempt": 1}},
        })
        assert lines and "retry" in lines[0] and "seed=2" in lines[0]
        assert r.retries == 1

    def test_progress_outer_scope_renders_rate_and_eta(self):
        r = TailRenderer()
        assert r.render({"type": "progress", "phase": "begin", "depth": 1,
                         "total": 4, "unit": "cells", "elapsed": 0.0}) == []
        lines = r.render({"type": "progress", "phase": "advance", "depth": 1,
                          "label": "q=25", "elapsed": 1.0})
        assert lines and "1/4" in lines[0]
        # inner scopes stay quiet
        r.render({"type": "progress", "phase": "begin", "depth": 2,
                  "total": 3, "unit": "runs", "elapsed": 1.0})
        assert r.render({"type": "progress", "phase": "advance", "depth": 2,
                         "elapsed": 1.1}) == []

    def test_unclosed_summary_says_killed(self):
        r = TailRenderer()
        r.render({"type": "stream-start", "label": "x", "pid": 1})
        assert "no close marker" in r.summary()


class TestTailSession:
    def test_closed_session_exits_zero(self, tmp_path):
        from repro.network.adversaries import RandomConnectedAdversary
        from repro.protocols.flooding import TokenFloodNode
        from repro.sim.config import RunConfig
        from repro.sim.factories import BoundNode, Constant, NodeSet
        from repro.sim.runner import replicate

        d = tmp_path / "sess"
        with observe(trace_dir=d, stream=True, resource_interval=0):
            ids = tuple(range(4))
            replicate(
                NodeSet(ids, BoundNode(TokenFloodNode, source=ids[0])),
                Constant(RandomConnectedAdversary(list(ids), seed=7)),
                seeds=(1,),
                config=RunConfig(max_rounds=16, workers=0, backend="reference"),
            )
        out = io.StringIO()
        assert tail_session(d, out, follow=False) == 0
        text = out.getvalue()
        assert "closed cleanly" in text and "run" in text

    def test_killed_session_exits_one(self, tmp_path):
        _write(tmp_path / EVENTS_FILENAME,
               _line("stream-start"), _line("run-complete", seq=1, run={}))
        out = io.StringIO()
        assert tail_session(tmp_path, out, follow=False) == 1
        assert "no close marker" in out.getvalue()

    def test_no_stream_raises_for_exit_two(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="REPRO_STREAM"):
            tail_session(tmp_path, io.StringIO(), follow=False)

    def test_waits_for_stream_to_appear(self, tmp_path):
        def writer(nth_sleep):
            if nth_sleep == 2:
                _write(tmp_path / EVENTS_FILENAME,
                       _line("stream-start"), _line("session-close", seq=1))

        timer = FakeTimer(on_sleep=writer)
        out = io.StringIO()
        code = tail_session(
            tmp_path, out, follow=True, poll=0.2, timeout=30,
            clock=timer.clock, sleep=timer.sleep,
        )
        assert code == 0 and "closed cleanly" in out.getvalue()

    def test_manifest_appearance_stops_follow(self, tmp_path):
        # writer closed between polls: manifest.json exists, close marker
        # already in the file — the stop hook ends the follow loop
        _write(tmp_path / EVENTS_FILENAME,
               _line("stream-start"), _line("session-close", seq=1))
        (tmp_path / MANIFEST_FILENAME).write_text("{}")
        timer = FakeTimer()
        out = io.StringIO()
        code = tail_session(
            tmp_path, out, follow=True, poll=0.2, timeout=30,
            clock=timer.clock, sleep=timer.sleep,
        )
        assert code == 0
