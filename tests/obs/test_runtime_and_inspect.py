"""Observation sessions (ambient capture) and the inspect report."""

from __future__ import annotations

import json

from repro.network.adversaries import RandomConnectedAdversary, StaticAdversary
from repro.network.causality import dynamic_diameter
from repro.network.generators import line_edges
from repro.obs import (
    SessionManifest,
    current_session,
    inspect_run,
    observe,
    read_trace_jsonl,
)
from repro.obs.instrumentation import PHASES
from repro.protocols.flooding import GossipMaxNode, TokenFloodNode
from repro.sim.coins import CoinSource
from repro.sim.engine import SynchronousEngine


def run_gossip(n=8, rounds=25, seed=5):
    ids = list(range(1, n + 1))
    nodes = {u: GossipMaxNode(u) for u in ids}
    eng = SynchronousEngine(nodes, RandomConnectedAdversary(ids, seed=3), CoinSource(seed))
    eng.run(rounds, stop_on_termination=False)
    return eng


class TestObserveSession:
    def test_no_session_no_instrumentation(self):
        assert current_session() is None
        eng = run_gossip(rounds=3)
        assert eng.instrumentation is None

    def test_session_captures_every_engine_run(self, tmp_path):
        # stream=False: the exact-listing assertion below documents the
        # baseline session layout (streaming adds sidecars, tested in
        # test_stream.py)
        with observe(trace_dir=tmp_path, label="cell", stream=False) as session:
            assert current_session() is session
            run_gossip(rounds=10, seed=1)
            run_gossip(rounds=10, seed=2)
        assert current_session() is None
        assert session.num_runs == 2
        files = sorted(p.name for p in tmp_path.iterdir())
        assert files == ["manifest.json", "run-0001.jsonl", "run-0002.jsonl",
                         "spans.jsonl"]

        manifest = SessionManifest.load(tmp_path / "manifest.json")
        assert manifest.label == "cell"
        assert [r.seed for r in manifest.runs] == [1, 2]
        assert all(r.adversary == "RandomConnectedAdversary" for r in manifest.runs)
        assert manifest.metrics["rounds_total"]["value"] == 20
        assert manifest.wall_seconds is not None and manifest.wall_seconds > 0

    def test_metrics_only_session_persists_nothing(self):
        with observe() as session:
            run_gossip(rounds=5)
        assert session.num_runs == 1
        assert session.trace_dir is None
        assert session.manifest.metrics["rounds_total"]["value"] == 5

    def test_sessions_nest_innermost_wins(self, tmp_path):
        outer_dir, inner_dir = tmp_path / "outer", tmp_path / "inner"
        with observe(trace_dir=outer_dir) as outer:
            with observe(trace_dir=inner_dir) as inner:
                run_gossip(rounds=4)
            run_gossip(rounds=4)
        assert inner.num_runs == 1
        assert outer.num_runs == 1  # only the run after the inner scope

    def test_explicit_instrumentation_beats_session(self, tmp_path):
        from repro.obs.instrumentation import Instrumentation

        mine = Instrumentation()
        with observe(trace_dir=tmp_path) as session:
            ids = list(range(1, 5))
            eng = SynchronousEngine(
                {u: GossipMaxNode(u) for u in ids},
                RandomConnectedAdversary(ids, seed=3),
                CoinSource(1),
                instrumentation=mine,
            )
            eng.run(3, stop_on_termination=False)
        assert eng.instrumentation is mine
        assert session.num_runs == 0  # session never saw the run


class TestInspect:
    def test_report_matches_trace(self, tmp_path):
        with observe(trace_dir=tmp_path):
            eng = run_gossip(n=8, rounds=30, seed=5)
        path = tmp_path / "run-0001.jsonl"
        report = inspect_run(path)
        assert report.rounds == 30
        assert report.total_bits == eng.trace.total_bits()
        assert report.bits_by_node == eng.trace.bits_by_node()
        assert set(report.phase_seconds) == set(PHASES)
        # phase timers partition each step: their sum is within 10% of wall
        assert report.wall_seconds is not None
        assert sum(report.phase_seconds.values()) >= 0.9 * report.wall_seconds

        text = report.render()
        assert "total bits" in text and "realized dynamic D" in text
        for phase in PHASES:
            assert phase in text

    def test_realized_diameter_matches_causality_pass(self, tmp_path):
        ids = list(range(1, 9))
        adv = StaticAdversary(ids, line_edges(ids))
        with observe(trace_dir=tmp_path):
            nodes = {u: TokenFloodNode(u, source=1) for u in ids}
            eng = SynchronousEngine(nodes, adv, CoinSource(2))
            eng.run(20, stop_on_termination=False)
        report = inspect_run(tmp_path / "run-0001.jsonl")
        expected = dynamic_diameter(adv.schedule(20), max_diameter=30)
        assert report.diameter == expected == len(ids) - 1

    def test_inspect_readable_without_metrics(self, tmp_path):
        """Traces written outside a metrics run still inspect cleanly."""
        from repro.obs.export import write_trace_jsonl

        eng = run_gossip(rounds=6)
        path = tmp_path / "bare.jsonl"
        write_trace_jsonl(eng.trace, path, node_ids=eng.node_ids)
        report = inspect_run(path)
        assert report.rounds == 6
        assert report.phase_seconds == {}
        assert "total bits" in report.render()

    def test_jsonl_lines_are_valid_json(self, tmp_path):
        with observe(trace_dir=tmp_path):
            run_gossip(rounds=4)
        lines = (tmp_path / "run-0001.jsonl").read_text().splitlines()
        kinds = [json.loads(line)["type"] for line in lines]
        assert kinds[0] == "manifest" and kinds[-1] == "summary"
        assert kinds[1:-1] == ["round"] * 4

    def test_manifest_run_read_back(self, tmp_path):
        with observe(trace_dir=tmp_path):
            run_gossip(rounds=4, seed=9)
        run = read_trace_jsonl(tmp_path / "run-0001.jsonl")
        assert run.manifest.seed == 9
        assert run.manifest.num_nodes == 8
        assert run.manifest.bandwidth_factor == 24
        assert run.node_ids == tuple(range(1, 9))
        assert run.run_metrics["rounds"] == 4
