"""Engine instrumentation: phase hooks, counters, and the disabled path."""

from __future__ import annotations

from repro.network.adversaries import RandomConnectedAdversary, StaticAdversary
from repro.network.generators import line_edges
from repro.obs.instrumentation import PHASES, Instrumentation
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY
from repro.protocols.flooding import GossipMaxNode, TokenFloodNode
from repro.sim.coins import CoinSource
from repro.sim.config import RunConfig
from repro.sim.engine import SynchronousEngine
from repro.sim.runner import replicate, run_protocol


def make_engine(n=8, seed=5, instrumentation=None, adversary=None):
    ids = list(range(1, n + 1))
    nodes = {u: GossipMaxNode(u) for u in ids}
    adv = adversary if adversary is not None else RandomConnectedAdversary(ids, seed=3)
    return SynchronousEngine(nodes, adv, CoinSource(seed), instrumentation=instrumentation)


class TestEngineHooks:
    def test_counters_match_trace(self):
        instr = Instrumentation()
        eng = make_engine(instrumentation=instr)
        trace = eng.run(30, stop_on_termination=False)
        assert instr.rounds == trace.rounds == 30
        assert instr.bits_sent == trace.total_bits()
        assert instr.messages_delivered == sum(
            sum(rec.delivered.values()) for rec in trace
        )
        reg = instr.registry.snapshot()
        assert reg["rounds_total"]["value"] == 30
        assert reg["bits_sent_total"]["value"] == trace.total_bits()
        assert reg["runs_total"]["value"] == 1

    def test_every_phase_observed_every_round(self):
        instr = Instrumentation()
        eng = make_engine(instrumentation=instr)
        eng.run(12, stop_on_termination=False)
        for phase in PHASES:
            hist = instr.registry.histogram("phase_seconds", {"phase": phase})
            assert hist.count == 12
            assert instr.phase_seconds[phase] >= 0.0

    def test_phase_sum_close_to_wall(self):
        instr = Instrumentation()
        eng = make_engine(n=16, instrumentation=instr)
        eng.run(60, stop_on_termination=False)
        assert instr.finished_at is not None
        wall = instr.wall_seconds
        assert wall > 0
        # the five phases partition each step; only loop overhead is left
        assert instr.phase_total_seconds <= wall
        assert instr.phase_total_seconds >= 0.5 * wall

    def test_topology_changes_counted(self):
        ids = list(range(1, 6))
        static = StaticAdversary(ids, line_edges(ids))
        instr = Instrumentation()
        nodes = {u: TokenFloodNode(u, source=1) for u in ids}
        eng = SynchronousEngine(nodes, static, CoinSource(1), instrumentation=instr)
        eng.run(10, stop_on_termination=False)
        # static topology: only the first round registers a "change"
        assert instr.topology_changes == 1

    def test_run_metrics_shape(self):
        instr = Instrumentation(registry=NULL_REGISTRY)
        eng = make_engine(instrumentation=instr)
        eng.run(5, stop_on_termination=False)
        m = instr.run_metrics()
        assert m["rounds"] == 5
        assert set(m["phase_seconds"]) == set(PHASES)
        assert m["wall_seconds"] > 0
        # null sink: nothing aggregated, per-run numbers still live
        assert instr.registry.snapshot() == {}
        assert not instr.aggregates

    def test_on_run_end_callback_fires(self):
        seen = []
        instr = Instrumentation(on_run_end=lambda i, e: seen.append((i, e)))
        eng = make_engine(instrumentation=instr)
        eng.run(3, stop_on_termination=False)
        assert seen and seen[0][0] is instr and seen[0][1] is eng

    def test_render_phases_mentions_all(self):
        instr = Instrumentation()
        eng = make_engine(instrumentation=instr)
        eng.run(3, stop_on_termination=False)
        text = instr.render_phases()
        for phase in PHASES:
            assert phase in text

    def test_disabled_path_has_no_instrumentation(self):
        eng = make_engine()
        assert eng.instrumentation is None
        trace = eng.run(5, stop_on_termination=False)
        assert trace.rounds == 5


class TestRunnerThreading:
    def test_run_protocol_instrumented(self):
        ids = list(range(1, 7))
        run = run_protocol(
            lambda: {u: TokenFloodNode(u, source=1) for u in ids},
            lambda: StaticAdversary(ids, line_edges(ids)),
            RunConfig(seed=2, max_rounds=50, instrument=True),
        )
        assert run.metrics["rounds"] == run.trace.rounds
        assert run.wall_seconds is not None and run.wall_seconds > 0
        assert set(run.metrics["phase_seconds"]) == set(PHASES)

    def test_run_protocol_uninstrumented_has_empty_metrics(self):
        ids = list(range(1, 5))
        run = run_protocol(
            lambda: {u: TokenFloodNode(u, source=1) for u in ids},
            lambda: StaticAdversary(ids, line_edges(ids)),
            RunConfig(seed=2, max_rounds=20),
        )
        assert run.metrics == {}
        assert run.wall_seconds is None

    def test_replicate_aggregates_shared_registry(self):
        ids = list(range(1, 6))
        reg = MetricsRegistry()
        summary = replicate(
            lambda: {u: TokenFloodNode(u, source=1) for u in ids},
            lambda: StaticAdversary(ids, line_edges(ids)),
            seeds=(1, 2, 3),
            config=RunConfig(max_rounds=30, instrument=True, registry=reg),
        )
        assert summary.num_runs == 3
        assert reg.counter("runs_total").value == 3
        total_rounds = sum(r.trace.rounds for r in summary.runs)
        assert reg.counter("rounds_total").value == total_rounds
        assert summary.total_wall_seconds is not None
        phases = summary.phase_seconds()
        assert set(phases) == set(PHASES)
        assert abs(sum(phases.values())) <= summary.total_wall_seconds
