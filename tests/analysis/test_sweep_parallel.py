"""Tests for parallel cartesian_sweep: order, equivalence, failure cells."""

from __future__ import annotations

import pytest

from repro.analysis.sweep import cartesian_sweep
from repro.errors import ConfigurationError
from repro.network.adversaries import RandomConnectedAdversary
from repro.protocols.cflood import cflood_factory
from repro.sim.config import RunConfig
from repro.sim.runner import replicate


def _cell(n, seed):
    fac = cflood_factory(0, num_nodes=n)
    summary = replicate(
        lambda: {u: fac(u) for u in range(n)},
        lambda: RandomConnectedAdversary(range(n), seed=seed),
        seeds=[seed],
        config=RunConfig(max_rounds=10 * n),
    )
    return {"rounds": summary.mean_rounds, "bits": summary.mean_bits}


def _failing_cell(n, seed):
    if n == 6 and seed == 2:
        raise ConfigurationError("boom")
    return {"ok": True}


class TestParallelSweep:
    PARAMS = {"n": [4, 6, 8], "seed": [1, 2]}

    def test_rows_match_sequential(self):
        seq = cartesian_sweep(self.PARAMS, _cell, RunConfig(workers=0))
        par = cartesian_sweep(self.PARAMS, _cell, RunConfig(workers=2))
        assert seq == par
        # grid order: n-major, seed-minor
        assert [(r["n"], r["seed"]) for r in par] == [
            (4, 1), (4, 2), (6, 1), (6, 2), (8, 1), (8, 2)
        ]

    def test_failing_cell_reports_parameters(self):
        with pytest.raises(ConfigurationError) as ei:
            cartesian_sweep(self.PARAMS, _failing_cell, RunConfig(workers=2))
        msg = str(ei.value)
        assert "boom" in msg and "n=6" in msg and "seed=2" in msg

    def test_failing_cell_inline_unlabelled(self):
        # inline mode: the exception propagates untouched
        with pytest.raises(ConfigurationError, match="^boom$"):
            cartesian_sweep(self.PARAMS, _failing_cell, RunConfig(workers=0))

    def test_lambda_fn_falls_back_inline(self):
        with pytest.warns(UserWarning, match="cannot be pickled"):
            rows = cartesian_sweep(
                {"a": [1, 2]}, lambda a: {"b": a + 1}, RunConfig(workers=2)
            )
        assert rows == [{"a": 1, "b": 2}, {"a": 2, "b": 3}]

    def test_env_opt_in(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        rows = cartesian_sweep({"a": [1, 2, 3]}, _failing_cell_safe)
        assert [r["a"] for r in rows] == [1, 2, 3]


def _failing_cell_safe(a):
    return {"doubled": 2 * a}
