"""Tests for the experiment-harness helpers."""

from __future__ import annotations

import pytest

from repro.analysis.experiments.base import ExperimentResult
from repro.analysis.experiments.protocols import measured_diameter
from repro.network.adversaries import (
    OverlappingStarsAdversary,
    RotatingStarAdversary,
    StaticAdversary,
)
from repro.network.generators import line_edges


class TestMeasuredDiameter:
    def test_static_line(self):
        ids = list(range(1, 9))
        adv = StaticAdversary(ids, line_edges(ids))
        assert measured_diameter(adv) == len(ids) - 1

    def test_overlapping_stars(self):
        ids = list(range(1, 13))
        assert measured_diameter(OverlappingStarsAdversary(ids)) <= 3

    def test_rotating_star_theta_n(self):
        ids = list(range(1, 9))
        assert measured_diameter(RotatingStarAdversary(ids)) == len(ids) - 1


class TestExperimentResult:
    def test_render_contains_everything(self):
        r = ExperimentResult(
            exp_id="EXP-X",
            title="demo",
            headers=["a", "b"],
            rows=[[1, 2.5]],
            notes=["a note"],
            summary={"k": 7},
        )
        out = r.render()
        assert "[EXP-X] demo" in out
        assert "2.5" in out
        assert "summary: k=7" in out
        assert "note: a note" in out

    def test_empty_summary_and_notes(self):
        r = ExperimentResult(exp_id="EXP-Y", title="t", headers=["x"], rows=[[1]])
        out = r.render()
        assert "summary" not in out and "note" not in out
