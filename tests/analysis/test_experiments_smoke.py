"""Smoke tests: every EXP-* experiment runs at a tiny configuration and
produces the structural claims its benchmark relies on."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import (
    exp_cc_bounds,
    exp_exponential_gap,
    exp_fig1,
    exp_fig2,
    exp_fig3,
    exp_known_d_upper_bounds,
    exp_sensitivity,
    exp_thm6_reduction,
    exp_thm7_reduction,
    exp_thm8_leader_election,
)


class TestFigureExperiments:
    def test_fig1_reproduces_paper_example(self):
        r = exp_fig1()
        assert r.summary["answer"] == 0
        assert r.summary["line_nodes"] == 2  # (q-1)/2 for q = 5
        # the (0,0) group is fully removed under the reference adversary
        # in round 1
        ref_rows = {row[0]: row for row in r.rows if row[2] == "reference"}
        assert ref_rows[4][3] == "./."
        # Bob diverges on the |_0^1 chain at round 1 (paper's example)
        bob_rows = {row[0]: row for row in r.rows if row[2] == "bob"}
        assert bob_rows[3][3] == "+/."

    def test_fig2_cascade_and_containment(self):
        r = exp_fig2()
        assert not r.summary["first_mid_reaches_A_by_horizon"]
        assert not r.summary["first_mid_reaches_B_by_horizon"]
        # chain j holds until round j-1 and is gone at round j
        assert r.rows[0][2] == "./."
        assert r.rows[1][2] == "+/+" and r.rows[1][3] == "./."

    def test_fig3_shifted_cascade(self):
        r = exp_fig3()
        labels = [row[1] for row in r.rows]
        assert labels == ["|_3^2", "|_5^4", "|_6^6", "|_6^6"]


class TestReductionExperiments:
    def test_thm6_tiny(self):
        r = exp_thm6_reduction(q_values=(25,), n=2, seeds=(1,))
        assert len(r.rows) == 4  # 2 truths x 2 oracles
        by_oracle = {}
        for row in r.rows:
            by_oracle.setdefault(row[3], []).append(row)
        # fast oracle decides 1 everywhere; conservative decides 0
        assert all(row[4] == 1 for row in by_oracle["fast(D=10)"])
        assert all(row[4] == 0 for row in by_oracle["conserv(D=N-1)"])
        # the fast oracle's confirm is premature exactly on truth-0 rows
        for row in by_oracle["fast(D=10)"]:
            assert row[11] == (row[2] == 1)

    def test_thm7_tiny(self):
        r = exp_thm7_reduction(q_values=(17,), n=2, seeds=(1,))
        # boundary N': the protocol stalls, so decision 0 everywhere
        assert all(row[6] == 0 for row in r.rows)
        assert all(abs(row[5] - 1 / 3) < 0.01 for row in r.rows)

    def test_cc_tiny(self):
        r = exp_cc_bounds(n_values=(64,), q_values=(5,), seed=1)
        (row,) = r.rows
        n, q = row[0], row[1]
        # measured protocols dominate the lower-bound formula
        bound = row[-1]
        assert all(bits >= bound for bits in row[3:7])


class TestProtocolExperiments:
    def test_thm8_tiny(self):
        r = exp_thm8_leader_election(
            sizes=(8,), adversaries=("overlap-stars",), seeds=(11,),
            include_line_up_to=0,
        )
        (row,) = r.rows
        assert row[4] == "1/1"  # elected ok

    def test_known_d_tiny(self):
        r = exp_known_d_upper_bounds(sizes=(12,), seeds=(21,))
        assert {row[0] for row in r.rows} == {
            "CFLOOD", "CONSENSUS", "MAX", "HEARFROM-N", "COUNT-N",
        }
        assert all(row[5] for row in r.rows)  # all correct

    def test_gap_formula_rows(self):
        r = exp_exponential_gap(measured_sizes=(), formula_sizes=(10**3, 10**6), seeds=())
        assert len(r.rows) == 2
        assert 0.15 < r.summary["floor_loglog_slope"] < 0.3

    @pytest.mark.slow
    def test_sensitivity_boundary(self):
        r = exp_sensitivity(n=12, errors=(0.0, 0.45), seeds=(41,), max_rounds=12_000)
        by_err = {row[0]: row for row in r.rows}
        assert by_err[0.0][3] == "1/1"
        assert by_err[0.45][4] == "1/1"  # stalled
