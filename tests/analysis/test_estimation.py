"""Tests for the N-estimation insensitivity experiment."""

from __future__ import annotations

from repro.analysis.experiments import exp_estimate_insensitivity
from repro.analysis.experiments.estimation import _bare_lambda_network
from repro.cc.disjointness import random_instance
from repro.core.composition import theorem7_network


class TestEstimateInsensitivity:
    def test_identical_within_horizon(self):
        r = exp_estimate_insensitivity(q_values=(9,), seeds=(1,), late_factor=20)
        (row,) = r.rows
        assert row[5] == row[6]  # bit-identical estimates at the horizon

    def test_bare_lambda_matches_full_lambda_block(self):
        inst = random_instance(2, 9, seed=1, value=0, zero_zero_count=1)
        bare = _bare_lambda_network(inst)
        full = theorem7_network(inst)
        # the Λ block is structurally identical in both worlds
        assert bare.subnets[0].num_nodes == full.subnets[0].num_nodes
        recv = lambda uid: True
        for r in (1, 2, 5):
            bare_edges = bare.subnets[0].reference_edges(r, recv)
            full_edges = full.subnets[0].reference_edges(r, recv)
            assert bare_edges == full_edges

    def test_true_sizes_differ_twofold(self):
        inst = random_instance(2, 9, seed=1, value=0, zero_zero_count=1)
        bare = _bare_lambda_network(inst)
        full = theorem7_network(inst)
        assert full.num_nodes == 2 * bare.num_nodes
