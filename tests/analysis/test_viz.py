"""Tests for the ASCII construction renderer."""

from __future__ import annotations

import pytest

from repro.analysis.viz import edge_glyph, render_rounds, render_subnetwork_round
from repro.cc.disjointness import DisjointnessInstance
from repro.core.gamma import GammaSubnetwork
from repro.core.lambda_net import LambdaSubnetwork


@pytest.fixture
def gamma(fig1_instance):
    return GammaSubnetwork(fig1_instance.n, fig1_instance.q, x=fig1_instance.x, y=fig1_instance.y)


class TestRenderer:
    def test_edge_glyph(self):
        assert edge_glyph(True) == "|"
        assert edge_glyph(False) == " "

    def test_reference_frame_shape(self, gamma):
        frame = render_subnetwork_round(gamma, 1, "reference")
        lines = frame.split("\n")
        assert lines[0] == "[reference r1]"
        assert lines[1].startswith("A")
        assert lines[-1].startswith("B")
        assert len(lines) == 8

    def test_belief_frames_show_question_marks(self, fig1_instance):
        alice = GammaSubnetwork(fig1_instance.n, fig1_instance.q, x=fig1_instance.x)
        frame = render_subnetwork_round(alice, 1, "alice")
        assert "?" in frame  # bottom labels unknown to Alice

    def test_reference_requires_both_labels(self, fig1_instance):
        alice = GammaSubnetwork(fig1_instance.n, fig1_instance.q, x=fig1_instance.x)
        with pytest.raises(Exception):
            render_subnetwork_round(alice, 1, "reference")

    def test_unknown_adversary_rejected(self, gamma):
        with pytest.raises(ValueError):
            render_subnetwork_round(gamma, 1, "carol")

    def test_zero_group_loses_both_edges_in_frame(self, gamma):
        frame = render_subnetwork_round(gamma, 1, "reference", group=4)
        top_edges = frame.split("\n")[3]
        bottom_edges = frame.split("\n")[5]
        assert "|" not in top_edges and "|" not in bottom_edges

    def test_lambda_line_rendered(self):
        lam = LambdaSubnetwork(1, 7, x=(0,), y=(0,))
        frame = render_subnetwork_round(lam, 1, "reference")
        assert "o---o" in frame  # the permanent middle line

    def test_render_rounds_concatenates(self, gamma):
        out = render_rounds(gamma, 2, "reference")
        assert "[reference r1]" in out and "[reference r2]" in out

    def test_group_filter(self, gamma):
        all_frame = render_subnetwork_round(gamma, 1, "reference")
        one_group = render_subnetwork_round(gamma, 1, "reference", group=1)
        assert len(one_group) < len(all_frame)


class TestSpoiledRenderer:
    def test_spoiled_map_matches_schedule(self, fig1_instance):
        from repro.analysis.viz import render_spoiled_round

        g = GammaSubnetwork(
            fig1_instance.n, fig1_instance.q, x=fig1_instance.x, y=fig1_instance.y
        )
        frame = render_spoiled_round(g, 1, "alice", group=4)  # the (0,0) group
        lines = frame.split("\n")
        assert "#" not in lines[1]  # tops never spoil for Alice
        assert "#" in lines[2] and "#" in lines[3]  # mids/bottoms at round 1

    def test_unknown_party_rejected(self, fig1_instance):
        from repro.analysis.viz import render_spoiled_round

        g = GammaSubnetwork(fig1_instance.n, fig1_instance.q, x=fig1_instance.x)
        with pytest.raises(ValueError):
            render_spoiled_round(g, 1, "carol")

    def test_bob_mirror(self, fig1_instance):
        from repro.analysis.viz import render_spoiled_round

        g = GammaSubnetwork(
            fig1_instance.n, fig1_instance.q, x=fig1_instance.x, y=fig1_instance.y
        )
        frame = render_spoiled_round(g, 1, "bob", group=4)
        lines = frame.split("\n")
        assert "#" in lines[1] and "#" in lines[2]  # tops/mids spoil for Bob
        assert "#" not in lines[3]  # bottoms never spoil for Bob
