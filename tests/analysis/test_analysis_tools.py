"""Tests for tables, fitting, and sweeps."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.fitting import crossover_x, loglog_slope
from repro.analysis.sweep import cartesian_sweep
from repro.analysis.tables import format_float, render_series, render_table


class TestTables:
    def test_format_float(self):
        assert format_float(None) == "-"
        assert format_float(True) == "yes"
        assert format_float(7) == "7"
        assert format_float(3.14159) == "3.14"
        assert format_float(1e-9) == "1.000e-09"

    def test_render_table_alignment(self):
        out = render_table(["a", "bb"], [[1, 2], [30, 4]], title="T")
        lines = out.split("\n")
        assert lines[0] == "T"
        assert len({len(l) for l in lines[1:]}) == 1  # aligned widths

    def test_render_series(self):
        out = render_series("s", [1, 2], [3, 4], "x", "y")
        assert "s" in out and "3" in out


class TestFitting:
    def test_slope_of_power_law(self):
        xs = [10, 100, 1000]
        ys = [x**2.0 for x in xs]
        slope, _ = loglog_slope(xs, ys)
        assert slope == pytest.approx(2.0)

    @given(st.floats(-2, 2))
    def test_recovers_exponent(self, p):
        xs = [10.0, 100.0, 1000.0]
        ys = [x**p for x in xs]
        slope, _ = loglog_slope(xs, ys)
        assert slope == pytest.approx(p, abs=1e-6)

    def test_rejects_nonpositive(self):
        with pytest.raises(Exception):
            loglog_slope([1, -2], [1, 2])

    def test_crossover_found(self):
        xs = [1, 2, 3, 4]
        a = [0, 1, 4, 9]
        b = [2, 2, 2, 2]
        cx = crossover_x(xs, a, b)
        assert 2 < cx <= 3

    def test_crossover_none(self):
        assert crossover_x([1, 2], [0, 0], [1, 1]) is None

    def test_crossover_at_start(self):
        assert crossover_x([5, 6], [9, 9], [1, 1]) == 5.0


class TestSweep:
    def test_cartesian_product(self):
        rows = cartesian_sweep(
            {"a": [1, 2], "b": ["x", "y"]},
            lambda a, b: {"out": f"{a}{b}"},
        )
        assert len(rows) == 4
        assert {"a": 1, "b": "y", "out": "1y"} in rows

    def test_result_keys_win(self):
        rows = cartesian_sweep({"a": [1]}, lambda a: {"a": 99})
        assert rows[0]["a"] == 99
