"""Cached-vs-fresh bit-identity and the sweep hit-rate acceptance bar.

PR 10's core guarantee: a cache hit is indistinguishable from the run
it replaced — same outputs, same round count, same bit totals, same
trace fingerprint — and a repeated identical ``cartesian_sweep`` is
served (almost) entirely from cache.  Because the key holds only the
semantic fields, reference- and batch-backend runs share entries; the
backends were proven bit-identical by the golden corpus and the
differential fuzzer, so serving one the other's entry is sound.
"""

from __future__ import annotations

from repro.analysis.sweep import cartesian_sweep
from repro.cache.runcache import run_fingerprint, verify_entry
from repro.cache.store import ResultCache, cache_counters
from repro.network.adversaries import StaticAdversary
from repro.network.generators import line_edges
from repro.protocols.flooding import TokenFloodNode
from repro.sim import RunConfig, replicate, run_protocol

IDS = tuple(range(6))


def _make_nodes():
    return {i: TokenFloodNode(i, source=0) for i in IDS}


def _make_adv():
    return StaticAdversary(IDS, line_edges(list(IDS)))


def _sweep_cell(a, b):
    """Module-level sweep cell (tokenizable): mixed int/float/str row."""
    return {"total": a * 10 + b, "ratio": a / (b + 1), "tag": f"{a}-{b}"}


def _delta(before, after):
    return {k: after[k] - before[k] for k in after}


def _cfg(tmp_path, **kw):
    kw.setdefault("cache", "rw")
    return RunConfig(
        seed=3, max_rounds=30, cache_dir=str(tmp_path / "cache"), **kw
    )


class TestRunProtocolCaching:
    def test_second_run_is_served_bit_identically(self, tmp_path):
        cold = run_protocol(_make_nodes, _make_adv, _cfg(tmp_path))
        warm = run_protocol(_make_nodes, _make_adv, _cfg(tmp_path))
        assert not cold.cached
        assert warm.cached
        assert warm.outputs == cold.outputs
        assert warm.rounds == cold.rounds
        assert warm.total_bits == cold.total_bits
        assert warm.terminated == cold.terminated
        assert run_fingerprint(warm) == run_fingerprint(cold)

    def test_cache_is_shared_across_backends(self, tmp_path):
        ref = run_protocol(
            _make_nodes, _make_adv, _cfg(tmp_path, backend="reference")
        )
        bat = run_protocol(_make_nodes, _make_adv, _cfg(tmp_path, backend="batch"))
        assert not ref.cached
        assert bat.cached  # the batch run hit the reference-stored entry
        assert run_fingerprint(bat) == run_fingerprint(ref)
        fresh_bat = run_protocol(
            _make_nodes, _make_adv,
            RunConfig(seed=3, max_rounds=30, backend="batch", cache="off"),
        )
        assert run_fingerprint(bat) == run_fingerprint(fresh_bat)

    def test_ro_mode_never_stores(self, tmp_path):
        before = cache_counters()
        run = run_protocol(_make_nodes, _make_adv, _cfg(tmp_path, cache="ro"))
        delta = _delta(before, cache_counters())
        assert not run.cached
        assert delta["store"] == 0
        assert delta["miss"] == 1

    def test_instrumented_runs_bypass_the_cache(self, tmp_path):
        run_protocol(_make_nodes, _make_adv, _cfg(tmp_path))  # warm the entry
        before = cache_counters()
        run = run_protocol(_make_nodes, _make_adv, _cfg(tmp_path, instrument=True))
        delta = _delta(before, cache_counters())
        assert not run.cached
        assert delta["hit"] == 0  # instrumented runs want the real trace
        assert run.trace.records  # and got one

    def test_different_seed_misses(self, tmp_path):
        run_protocol(_make_nodes, _make_adv, _cfg(tmp_path))
        other = run_protocol(
            _make_nodes, _make_adv,
            RunConfig(seed=4, max_rounds=30, cache="rw",
                      cache_dir=str(tmp_path / "cache")),
        )
        assert not other.cached


class TestReplicateCaching:
    def test_replicate_entry_is_all_or_nothing(self, tmp_path):
        cfg = RunConfig(max_rounds=30, cache="rw", cache_dir=str(tmp_path / "c"))
        cold = replicate(_make_nodes, _make_adv, [1, 2, 3], cfg)
        before = cache_counters()
        warm = replicate(_make_nodes, _make_adv, [1, 2, 3], cfg)
        delta = _delta(before, cache_counters())
        assert delta["hit"] == 1  # one replicate entry, not three run entries
        assert all(r.cached for r in warm.runs)
        assert [r.outputs for r in warm.runs] == [r.outputs for r in cold.runs]
        assert [r.rounds for r in warm.runs] == [r.rounds for r in cold.runs]
        assert [run_fingerprint(r) for r in warm.runs] == [
            run_fingerprint(r) for r in cold.runs
        ]

    def test_different_seed_list_misses(self, tmp_path):
        cfg = RunConfig(max_rounds=30, cache="rw", cache_dir=str(tmp_path / "c"))
        replicate(_make_nodes, _make_adv, [1, 2, 3], cfg)
        summary = replicate(_make_nodes, _make_adv, [1, 2], cfg)
        assert not any(r.cached for r in summary.runs)


class TestSweepCaching:
    GRID = {"a": list(range(6)), "b": list(range(4))}  # 24 cells

    def test_repeated_sweep_served_at_least_95_percent_from_cache(self, tmp_path):
        cfg = RunConfig(cache="rw", cache_dir=str(tmp_path / "c"))
        cold = cartesian_sweep(self.GRID, _sweep_cell, config=cfg)
        before = cache_counters()
        warm = cartesian_sweep(self.GRID, _sweep_cell, config=cfg)
        delta = _delta(before, cache_counters())
        n_cells = len(cold)
        assert n_cells == 24
        # the acceptance bar: >= 95% of cells served from cache,
        # bit-identically (here: all of them)
        assert delta["hit"] >= 0.95 * n_cells
        assert delta["store"] == 0
        assert warm == cold

    def test_uncacheable_cell_fn_still_sweeps(self, tmp_path):
        cfg = RunConfig(cache="rw", cache_dir=str(tmp_path / "c"))
        before = cache_counters()
        rows = cartesian_sweep({"a": [1, 2]}, lambda a: {"b": a + 1}, config=cfg)
        delta = _delta(before, cache_counters())
        assert rows == [{"a": 1, "b": 2}, {"a": 2, "b": 3}]
        assert delta["uncacheable"] >= 1
        assert delta["store"] == 0


class TestVerify:
    def test_stored_entries_verify_bit_identically(self, tmp_path):
        run_protocol(_make_nodes, _make_adv, _cfg(tmp_path))
        cartesian_sweep(
            {"a": [1, 2], "b": [0]}, _sweep_cell,
            config=RunConfig(cache="rw", cache_dir=str(tmp_path / "cache")),
        )
        cache = ResultCache(tmp_path / "cache")
        entries = [entry for _path, entry in cache.iter_entries()]
        assert len(entries) == 3
        for entry in entries:
            status, detail = verify_entry(entry)
            assert status == "ok", detail

    def test_tampered_payload_is_a_mismatch(self, tmp_path):
        cfg = RunConfig(cache="rw", cache_dir=str(tmp_path / "cache"))
        cartesian_sweep({"a": [1, 2], "b": [0]}, _sweep_cell, config=cfg)
        cache = ResultCache(tmp_path / "cache")
        (_p1, first), (_p2, second) = sorted(
            cache.iter_entries(), key=lambda pe: pe[1]["key"]
        )
        first["payload"] = second["payload"]  # right recipe, wrong result
        status, _detail = verify_entry(first)
        assert status == "mismatch"

    def test_recipe_free_entry_is_skipped(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put("ab" + "0" * 62, {"row": {}}, "cell", recipe=None)
        ((_path, entry),) = list(cache.iter_entries())
        status, _detail = verify_entry(entry)
        assert status == "skip"
