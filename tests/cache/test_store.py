"""The cache store's crash-safety contract (PR 10, satellite 3).

A damaged entry — torn JSON, truncation mid-write, a future format
version, a key that does not match its content — is a *miss* that gets
counted as corrupt and transparently rewritten on the next store.  It
is never a traceback: the cache can only ever make a run faster, not
break it.
"""

from __future__ import annotations

import json

import pytest

from repro.cache.store import (
    CACHE_DIR_ENV,
    ENTRY_FORMAT_VERSION,
    ResultCache,
    cache_counters,
    open_cache,
    resolve_cache_dir,
)
from repro.errors import ConfigurationError
from repro.sim.config import CACHE_ENV, RunConfig, resolve_cache

KEY = "ab" + "0" * 62
PAYLOAD = {"rows": [1, 2, 3]}


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


def _delta(before, after):
    return {k: after[k] - before[k] for k in after}


class TestRoundTrip:
    def test_put_get_round_trip(self, cache):
        cache.put(KEY, PAYLOAD, "cell")
        assert cache.get(KEY) == PAYLOAD

    def test_absent_entry_is_a_plain_miss(self, cache):
        before = cache_counters()
        assert cache.get(KEY) is None
        delta = _delta(before, cache_counters())
        assert delta["miss"] == 1
        assert delta["corrupt"] == 0

    def test_put_is_atomic_no_tmp_residue(self, cache):
        cache.put(KEY, PAYLOAD, "cell")
        leftovers = [p for p in cache.objects_dir.rglob("*") if p.suffix == ".tmp"]
        assert leftovers == []


class TestCorruptionIsAMissNeverATraceback:
    """The injected-corruption regression matrix (satellite 3)."""

    def _corrupt(self, cache, text):
        path = cache.entry_path(KEY)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)

    @pytest.mark.parametrize(
        "damage",
        [
            pytest.param("{\"format_version\": 1, \"key\":", id="torn-json"),
            pytest.param("", id="empty-file"),
            pytest.param("[1, 2, 3]", id="non-dict"),
            pytest.param(
                json.dumps(
                    {"format_version": ENTRY_FORMAT_VERSION + 1, "key": KEY,
                     "kind": "cell", "payload": PAYLOAD}
                ),
                id="future-format-version",
            ),
            pytest.param(
                json.dumps(
                    {"format_version": ENTRY_FORMAT_VERSION,
                     "key": "cc" + "1" * 62, "kind": "cell", "payload": PAYLOAD}
                ),
                id="wrong-key",
            ),
            pytest.param(
                json.dumps(
                    {"format_version": ENTRY_FORMAT_VERSION, "key": KEY,
                     "kind": "cell"}
                ),
                id="missing-payload",
            ),
        ],
    )
    def test_damaged_entry_is_corrupt_miss_then_rewritable(self, cache, damage):
        self._corrupt(cache, damage)
        before = cache_counters()
        assert cache.get(KEY) is None  # never raises
        delta = _delta(before, cache_counters())
        assert delta["corrupt"] == 1
        assert delta["miss"] == 1
        # the next store heals the slot in place
        cache.put(KEY, PAYLOAD, "cell")
        assert cache.get(KEY) == PAYLOAD

    def test_truncated_mid_write_entry_heals(self, cache):
        cache.put(KEY, PAYLOAD, "cell")
        path = cache.entry_path(KEY)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert cache.get(KEY) is None
        cache.put(KEY, PAYLOAD, "cell")
        assert cache.get(KEY) == PAYLOAD


class TestStatsAndGc:
    def test_stats_counts_entries_and_corruption(self, cache):
        cache.put(KEY, PAYLOAD, "cell")
        cache.put("cd" + "2" * 62, PAYLOAD, "run")
        bad = cache.entry_path("ef" + "3" * 62)
        bad.parent.mkdir(parents=True, exist_ok=True)
        bad.write_text("not json")
        stats = cache.stats()
        assert stats["entries"] == 2
        assert stats["corrupt"] == 1
        assert stats["by_kind"] == {"cell": 1, "run": 1}
        assert stats["total_bytes"] > 0

    def test_gc_always_prunes_corrupt(self, cache):
        bad = cache.entry_path(KEY)
        bad.parent.mkdir(parents=True, exist_ok=True)
        bad.write_text("not json")
        report = cache.gc()
        assert report["removed"] == 1
        assert cache.stats()["corrupt"] == 0

    def test_gc_prunes_by_age(self, cache):
        cache.put(KEY, PAYLOAD, "cell")
        entry = json.loads(cache.entry_path(KEY).read_text())
        report = cache.gc(max_age_seconds=60, now=entry["created_unix"] + 120)
        assert report == {
            "removed": 1, "kept": 0, "bytes_freed": report["bytes_freed"]
        }
        assert report["bytes_freed"] > 0

    def test_gc_prunes_oldest_first_to_fit_size(self, cache):
        old_key, new_key = KEY, "cd" + "4" * 62
        cache.put(old_key, PAYLOAD, "cell")
        cache.put(new_key, PAYLOAD, "cell")
        # age the first entry so the size pass evicts it first
        path = cache.entry_path(old_key)
        entry = json.loads(path.read_text())
        entry["created_unix"] -= 1000
        path.write_text(json.dumps(entry))
        one_entry_bytes = cache.entry_path(new_key).stat().st_size
        report = cache.gc(max_bytes=one_entry_bytes)
        assert report["removed"] == 1
        assert cache.get(new_key) == PAYLOAD
        assert cache.get(old_key) is None


class TestResolution:
    def test_resolve_cache_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(CACHE_ENV, "rw")
        assert resolve_cache("off") == "off"
        assert resolve_cache(None) == "rw"
        monkeypatch.delenv(CACHE_ENV)
        assert resolve_cache(None) == "off"

    def test_resolve_cache_rejects_unknown_mode(self, monkeypatch):
        monkeypatch.setenv(CACHE_ENV, "write-back")
        with pytest.raises(ConfigurationError, match="unknown cache mode"):
            resolve_cache(None)

    def test_resolve_cache_dir_explicit_beats_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "env"))
        assert resolve_cache_dir(str(tmp_path / "arg")) == tmp_path / "arg"
        assert resolve_cache_dir(None) == tmp_path / "env"

    def test_open_cache_off_is_none(self, monkeypatch):
        monkeypatch.delenv(CACHE_ENV, raising=False)
        assert open_cache(RunConfig()) is None
        assert open_cache(RunConfig(cache="off")) is None

    def test_open_cache_modes(self, tmp_path):
        cache, mode = open_cache(RunConfig(cache="ro", cache_dir=str(tmp_path)))
        assert mode == "ro"
        assert cache.root == tmp_path
        _, mode = open_cache(RunConfig(cache="rw", cache_dir=str(tmp_path)))
        assert mode == "rw"

    def test_config_rejects_unknown_cache_mode(self):
        with pytest.raises(ConfigurationError, match="unknown cache mode"):
            RunConfig(cache="write-back")
