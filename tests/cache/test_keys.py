"""Property tests for the content-addressed cache keys (PR 10).

The key contract: a key is a pure function of the *semantic* run
identity — the :data:`SEMANTIC_CONFIG_FIELDS` subset of ``RunConfig``
plus the tokenized cell parts — and of nothing else.  Hypothesis pins
the three halves of that contract: stability (``as_dict``/``from_dict``
round-trips and dict insertion order do not move the key), sensitivity
(every semantic field flip moves it), and blindness (every execution
knob — backend, workers, instrumentation, the cache settings
themselves — leaves it alone, which is what lets reference and batch
runs share entries).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.key import (
    SEMANTIC_CONFIG_FIELDS,
    UncacheableError,
    cache_key,
    cache_token,
    semantic_config,
)
from repro.sim.config import RunConfig


def semantic_configs():
    """Strategy: RunConfigs varying only in the semantic fields."""
    return st.builds(
        RunConfig,
        seed=st.one_of(st.none(), st.integers(0, 10_000)),
        max_rounds=st.one_of(st.none(), st.integers(1, 100_000)),
        bandwidth_factor=st.integers(1, 128),
        check_connected=st.booleans(),
    )


def _module_fn(x):
    """A module-level function: tokenizable by qualified name."""
    return x


class TestKeyStability:
    @given(cfg=semantic_configs())
    @settings(max_examples=40)
    def test_as_dict_round_trip_preserves_key(self, cfg):
        round_tripped = RunConfig.from_dict(cfg.as_dict())
        assert cache_key("run", cfg, {"p": 1}) == cache_key(
            "run", round_tripped, {"p": 1}
        )

    @given(
        cfg=semantic_configs(),
        pairs=st.lists(
            st.tuples(st.text(min_size=1, max_size=8), st.integers(-100, 100)),
            min_size=2,
            max_size=6,
            unique_by=lambda kv: kv[0],
        ),
    )
    @settings(max_examples=40)
    def test_dict_insertion_order_is_irrelevant(self, cfg, pairs):
        forward = dict(pairs)
        backward = dict(reversed(pairs))
        assert cache_key("cell", cfg, forward) == cache_key("cell", cfg, backward)

    def test_none_config_means_default_config(self):
        assert semantic_config(None) == semantic_config(RunConfig())
        assert cache_key("run", None, {}) == cache_key("run", RunConfig(), {})


class TestKeySensitivity:
    @given(cfg=semantic_configs())
    @settings(max_examples=40)
    def test_every_semantic_field_flip_moves_the_key(self, cfg):
        base = cache_key("run", cfg, {"p": 1})
        flips = {
            "seed": (cfg.seed or 0) + 1,
            "max_rounds": (cfg.max_rounds or 0) + 1,
            "bandwidth_factor": cfg.bandwidth_factor + 1,
            "check_connected": not cfg.check_connected,
        }
        assert set(flips) == set(SEMANTIC_CONFIG_FIELDS)
        for field, new_value in flips.items():
            assert cache_key("run", cfg.evolve(**{field: new_value}), {"p": 1}) != base

    def test_kind_namespaces_the_key(self):
        assert cache_key("run", None, {"p": 1}) != cache_key("cell", None, {"p": 1})

    def test_parts_move_the_key(self):
        assert cache_key("cell", None, {"p": 1}) != cache_key("cell", None, {"p": 2})


class TestKeyBlindness:
    @given(
        cfg=semantic_configs(),
        backend=st.sampled_from([None, "reference", "batch"]),
        workers=st.one_of(st.none(), st.integers(0, 8)),
        instrument=st.booleans(),
        cache=st.sampled_from([None, "rw", "ro", "off"]),
    )
    @settings(max_examples=40)
    def test_execution_knobs_never_move_the_key(
        self, cfg, backend, workers, instrument, cache
    ):
        base = cache_key("run", cfg, {"p": 1})
        knobbed = cfg.evolve(
            backend=backend,
            workers=workers,
            instrument=instrument,
            cache=cache,
            cache_dir="/tmp/somewhere-else",
        )
        assert cache_key("run", knobbed, {"p": 1}) == base


class TestCacheToken:
    def test_tuple_and_list_are_distinct(self):
        assert cache_token((1, 2)) != cache_token([1, 2])

    def test_set_tokens_are_order_free(self):
        assert cache_token({3, 1, 2}) == cache_token({2, 3, 1})

    def test_float_tokens_are_bit_exact(self):
        assert cache_token(0.1) != cache_token(0.1 + 1e-17 + 1e-16)
        assert cache_token(1.0) != cache_token(1)

    def test_named_functions_token_by_qualified_name(self):
        token = cache_token(_module_fn)
        assert token[0] == "fn"
        assert token[2].endswith("_module_fn")

    def test_lambdas_are_uncacheable(self):
        with pytest.raises(UncacheableError):
            cache_token(lambda x: x)

    def test_bound_methods_are_uncacheable(self):
        with pytest.raises(UncacheableError):
            cache_token("abc".upper)

    def test_stateless_opaque_objects_are_uncacheable(self):
        class Opaque:
            __slots__ = ()

        with pytest.raises(UncacheableError):
            cache_token(Opaque())
