"""Exhaustive verification of the chain rules against Lemma 3.

For every q, every (possibly shifted) promise label pair, every round in
the simulation horizon, and both behaviours of the middle node, we check:

* edge removals are monotone (a removed edge stays removed);
* the Lemma-3 conditions: for any node Z non-spoiled for a party at
  round r, (i) the symmetric difference between Z's reference neighbours
  S and simulated neighbours S' contains only the (receiving) middle
  node, and (ii) every member of S' is the far special node or a node
  non-spoiled for that party at round r-1;
* the explicit spoiled/non-spoiled enumeration of the Lemma-3 proof.
"""

from __future__ import annotations

import itertools

import pytest

from repro.core.chains import (
    NEVER,
    alice_spoil_rounds,
    bob_spoil_rounds,
    bottom_edge_present_alice,
    bottom_edge_present_bob,
    bottom_edge_present_reference,
    top_edge_present_alice,
    top_edge_present_bob,
    top_edge_present_reference,
)
from repro.errors import ConfigurationError

QS = (5, 7, 9, 13)


def chain_label_pairs(q, lambda_rule5):
    """All label pairs a chain can carry in a type-Γ / type-Λ subnetwork."""
    pairs = [(k, k - 1) for k in range(1, q)] + [(k, k + 1) for k in range(q - 1)]
    pairs += [(0, 0), (q - 1, q - 1)]
    if lambda_rule5:
        # Λ shifts (0,0) coordinates to equal even labels
        pairs += [(2 * t, 2 * t) for t in range(1, (q - 1) // 2)]
    return sorted(set(pairs))


def neighbor_sets(a, b, q, r, mid_recv, lambda_rule5, party):
    """(S, S') per node for one chain hanging between A and B.

    Node names: 'U', 'V', 'W' plus the specials 'A', 'B'.
    """
    recv = lambda _r: mid_recv
    top_ref = top_edge_present_reference(a, b, q, r, recv, lambda_rule5)
    bot_ref = bottom_edge_present_reference(a, b, q, r, recv, lambda_rule5)
    if party == "alice":
        top_sim = top_edge_present_alice(a, r)
        bot_sim = bottom_edge_present_alice(a, r)
    else:
        top_sim = top_edge_present_bob(b, r)
        bot_sim = bottom_edge_present_bob(b, r)

    def sets(top, bot):
        return {
            "U": {"A"} | ({"V"} if top else set()),
            "V": ({"U"} if top else set()) | ({"W"} if bot else set()),
            "W": ({"V"} if bot else set()) | {"B"},
        }

    return sets(top_ref, bot_ref), sets(top_sim, bot_sim)


def spoil(party, a, b):
    if party == "alice":
        return dict(zip("UVW", alice_spoil_rounds(a)))
    return dict(zip("UVW", bob_spoil_rounds(b)))


class TestLemma3Exhaustive:
    @pytest.mark.parametrize("q", QS)
    @pytest.mark.parametrize("lambda_rule5", [False, True])
    @pytest.mark.parametrize("party", ["alice", "bob"])
    def test_lemma3_conditions(self, q, lambda_rule5, party):
        horizon = (q - 1) // 2
        far_special = "B" if party == "alice" else "A"
        for a, b in chain_label_pairs(q, lambda_rule5):
            if not lambda_rule5 and a == b and a not in (0, q - 1):
                continue  # equal interior labels cannot occur in type-Γ
            sp = spoil(party, a, b)
            for r, mid_recv in itertools.product(range(1, horizon + 1), (True, False)):
                S, Sp = neighbor_sets(a, b, q, r, mid_recv, lambda_rule5, party)
                for z in "UVW":
                    if r >= sp[z]:
                        continue  # Z spoiled at r: lemma says nothing
                    if z == "V" and not mid_recv:
                        continue  # lemma applies only to *receiving* nodes
                    diff = (S[z] - Sp[z]) | (Sp[z] - S[z])
                    if z == "V":
                        # a receiving non-spoiled middle sees identical
                        # neighbour sets under both adversaries
                        assert diff == set(), (a, b, q, r, z, diff)
                    else:
                        # (i): differing neighbours are exactly a receiving V
                        assert diff <= {"V"}, (a, b, q, r, z, diff)
                        if diff:
                            assert mid_recv, (a, b, q, r, z)
                    # (ii): S' members are the far special or non-spoiled at r-1
                    for m in Sp[z]:
                        if m in ("A", "B"):
                            assert m == far_special or (
                                m == ("A" if party == "alice" else "B")
                            )
                            continue
                        assert r - 1 < sp[m], (a, b, q, r, z, m)

    @pytest.mark.parametrize("q", QS)
    @pytest.mark.parametrize("lambda_rule5", [False, True])
    def test_removals_monotone(self, q, lambda_rule5):
        for a, b in chain_label_pairs(q, lambda_rule5):
            if not lambda_rule5 and a == b and a not in (0, q - 1):
                continue
            for mid_recv in (True, False):
                recv = lambda _r: mid_recv
                for fn in (top_edge_present_reference, bottom_edge_present_reference):
                    history = [fn(a, b, q, r, recv, lambda_rule5) for r in range(1, q + 3)]
                    # once False, never True again
                    assert all(
                        not (not cur and nxt) for cur, nxt in zip(history, history[1:])
                    ), (a, b, fn.__name__)


class TestLemma3Enumeration:
    """The explicit cases from the Lemma-3 proof text."""

    def test_even_top_chains_for_alice(self):
        # |_{2t+1}^{2t} and |_{2t-1}^{2t}: U never spoiled, V and W
        # non-spoiled iff r <= t
        for t in range(0, 5):
            a = 2 * t
            su, sv, sw = alice_spoil_rounds(a)
            assert su == NEVER
            assert sv == t + 1 and sw == t + 1

    def test_odd_top_chains_for_alice(self):
        # |_{2t}^{2t+1}: U and V always non-spoiled, W non-spoiled iff r <= t
        for t in range(0, 5):
            a = 2 * t + 1
            su, sv, sw = alice_spoil_rounds(a)
            assert su == NEVER and sv == NEVER
            assert sw == t + 1

    def test_2t_minus_1_top_for_alice(self):
        # |_{2t}^{2t-1}: W non-spoiled iff r <= t - 1
        for t in range(1, 5):
            a = 2 * t - 1
            _, _, sw = alice_spoil_rounds(a)
            assert sw == t  # spoiled from round t => non-spoiled iff r <= t-1

    def test_bob_mirror(self):
        for t in range(0, 5):
            su, sv, sw = bob_spoil_rounds(2 * t)
            assert sw == NEVER and su == t + 1 and sv == t + 1
            su, sv, sw = bob_spoil_rounds(2 * t + 1)
            assert sw == NEVER and sv == NEVER and su == t + 1

    def test_q_minus_1_chain_never_touched(self):
        q = 9
        recv = lambda _r: True
        for r in range(1, q + 3):
            assert top_edge_present_reference(q - 1, q - 1, q, r, recv, False)
            assert bottom_edge_present_reference(q - 1, q - 1, q, r, recv, True)

    def test_zero_zero_gamma_removed_at_round_1(self):
        recv = lambda _r: True
        assert not top_edge_present_reference(0, 0, 9, 1, recv, False)
        assert not bottom_edge_present_reference(0, 0, 9, 1, recv, False)

    def test_equal_even_lambda_cascade(self):
        # (2t, 2t) removed at round t+1 in type-Λ (Figure 2)
        recv = lambda _r: True
        for t in range(0, 4):
            a = 2 * t
            assert top_edge_present_reference(a, a, 9, t, recv, True) if t >= 1 else True
            assert not top_edge_present_reference(a, a, 9, t + 1, recv, True)
            assert not bottom_edge_present_reference(a, a, 9, t + 1, recv, True)

    def test_adaptive_rule3(self):
        # (2t, 2t+1): top removed at t+2 if V receiving in t+1, else t+1
        q, t = 9, 2
        a, b = 2 * t, 2 * t + 1
        receiving = lambda _r: True
        sending = lambda _r: False
        assert top_edge_present_reference(a, b, q, t, receiving, False)
        assert top_edge_present_reference(a, b, q, t + 1, receiving, False)
        assert not top_edge_present_reference(a, b, q, t + 2, receiving, False)
        assert not top_edge_present_reference(a, b, q, t + 1, sending, False)

    def test_adaptive_rule4(self):
        # (2t+1, 2t): bottom removed at t+2 if V receiving in t+1, else t+1
        q, t = 9, 2
        a, b = 2 * t + 1, 2 * t
        receiving = lambda _r: True
        sending = lambda _r: False
        assert bottom_edge_present_reference(a, b, q, t + 1, receiving, False)
        assert not bottom_edge_present_reference(a, b, q, t + 2, receiving, False)
        assert not bottom_edge_present_reference(a, b, q, t + 1, sending, False)

    def test_alice_adversary_rules(self):
        # a = 2t: top removed at t+1; a = 2t+1: bottom removed at t+2
        assert top_edge_present_alice(4, 2)
        assert not top_edge_present_alice(4, 3)
        assert bottom_edge_present_alice(4, 100)
        assert bottom_edge_present_alice(5, 3)
        assert not bottom_edge_present_alice(5, 4)
        assert top_edge_present_alice(5, 100)

    def test_bob_adversary_rules(self):
        assert bottom_edge_present_bob(4, 2)
        assert not bottom_edge_present_bob(4, 3)
        assert top_edge_present_bob(5, 3)
        assert not top_edge_present_bob(5, 4)

    def test_invalid_labels_rejected(self):
        recv = lambda _r: True
        with pytest.raises(ConfigurationError):
            top_edge_present_reference(3, 3, 9, 1, recv, True)  # equal odd
        with pytest.raises(ConfigurationError):
            top_edge_present_reference(0, 2, 9, 1, recv, True)  # gap 2
