"""Lemma 5 against *arbitrary* protocols.

Lemma 5 quantifies over every oracle protocol.  Gossip and flooding are
friendly workloads; this file stress-tests the two-party simulation with
a protocol whose action and payload are a rolling hash of its *entire*
history (inputs, coins, every received payload).  Any divergence —
a message delivered in one execution but not the other, a different
payload, a different order — permanently changes the node's hash state
and surfaces as a payload mismatch within a round or two.  Hypothesis
drives the protocol's behaviour seed and the instance.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import stable_hash64
from repro.cc.disjointness import random_instance
from repro.core.simulation import TwoPartyReduction, run_reference_execution
from repro.sim.actions import Receive, Send
from repro.sim.node import ProtocolNode

from ..conftest import disjointness_instances


class ChaoticNode(ProtocolNode):
    """Deterministic but structureless: everything feeds a rolling hash.

    * action: send iff a coin meets a state-dependent bias;
    * payload: a 20-bit digest of the full history;
    * on_messages: folds every payload (in delivered order) into state.
    """

    def __init__(self, uid: int, behavior_seed: int):
        super().__init__(uid)
        self.state = stable_hash64((behavior_seed, uid))

    def action(self, round_, coins):
        bias = 0.25 + 0.5 * ((self.state >> 8) % 256) / 255.0
        if coins.bit(bias):
            digest = (self.state ^ (self.state >> 17)) % (1 << 20)
            self.state = stable_hash64((self.state, 0x5E2D, round_))
            return Send(("c", digest))
        self.state = stable_hash64((self.state, 0x2ECF, round_))
        return Receive()

    def on_messages(self, round_, payloads):
        for p in payloads:
            self.state = stable_hash64((self.state, p[1]))

    def output(self):
        return None


def chaotic_factory(behavior_seed: int):
    return lambda uid: ChaoticNode(uid, behavior_seed)


def assert_chaotic_fidelity(inst, mapping, behavior_seed, seed):
    factory = chaotic_factory(behavior_seed)
    T = (inst.q - 1) // 2
    ref = run_reference_execution(inst, mapping, factory, seed, rounds=T)
    red = TwoPartyReduction(inst, mapping, factory, seed)
    for r in range(1, T + 1):
        fa = red.alice.step_actions(r)
        fb = red.bob.step_actions(r)
        for party in (red.alice, red.bob):
            for uid in party.nodes:
                if party.spoil[uid] >= r:
                    act = party.actions_of(uid)
                    kind, payload = ref.spies[uid].history[r]
                    if isinstance(act, Send):
                        assert kind == "send" and payload == act.payload, (
                            party.party, uid, r,
                        )
                    else:
                        assert kind == "recv", (party.party, uid, r)
        red.alice.step_delivery(r, fb)
        red.bob.step_delivery(r, fa)
    # final states of never-spoiled nodes must agree bit for bit
    for party in (red.alice, red.bob):
        for uid, node in party.nodes.items():
            if party.spoil[uid] > T:
                assert node.state == ref.spies[uid].inner.state, (party.party, uid)


class TestLemma5Arbitrary:
    @pytest.mark.parametrize("mapping", ["T6", "T7"])
    @pytest.mark.parametrize("behavior_seed", [1, 99, 4242])
    def test_chaotic_protocol(self, mapping, behavior_seed):
        inst = random_instance(3, 9, seed=behavior_seed, value=behavior_seed % 2)
        assert_chaotic_fidelity(inst, mapping, behavior_seed, seed=7)

    @given(
        inst=disjointness_instances(min_n=1, max_n=3, min_q=5, max_q=9),
        behavior_seed=st.integers(0, 2**32),
    )
    @settings(max_examples=10)
    def test_chaotic_protocol_property(self, inst, behavior_seed):
        assert_chaotic_fidelity(inst, "T6", behavior_seed, seed=behavior_seed % 1000)
