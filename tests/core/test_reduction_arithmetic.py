"""Tests for the reduction parameter arithmetic and bound formulas."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.composition import theorem6_size
from repro.core.reduction import (
    cflood_lower_bound_flooding_rounds,
    consensus_lower_bound_flooding_rounds,
    exponential_gap_factor,
    implied_time_lower_bound,
    known_d_upper_bound_flooding_rounds,
    theorem6_parameters,
)
from repro.errors import ConfigurationError


class TestTheorem6Parameters:
    def test_round_trip(self):
        s = 3
        q = 120 * s + 1
        n = 7
        big_n = theorem6_size(n, q)
        assert theorem6_parameters(s, big_n) == (q, n)

    def test_rejects_small_n(self):
        # the conservative protocol's s = N can never be instantiated
        with pytest.raises(ConfigurationError):
            theorem6_parameters(s=100, big_n=100)

    def test_rejects_misaligned_n(self):
        with pytest.raises(ConfigurationError, match="nearest valid"):
            theorem6_parameters(s=1, big_n=3 * 121 * 2 + 5)

    @given(st.integers(1, 20), st.integers(1, 50))
    def test_consistency(self, s, n):
        q = 120 * s + 1
        big_n = theorem6_size(n, q)
        q2, n2 = theorem6_parameters(s, big_n)
        assert (q2, n2) == (q, n)


class TestBoundFormulas:
    def test_quarter_power_shape(self):
        # multiplying N by 16 (and ignoring the log) ~doubles the bound
        a = cflood_lower_bound_flooding_rounds(10**4)
        b = cflood_lower_bound_flooding_rounds(16 * 10**4)
        assert 1.7 < b / a < 2.1

    def test_consensus_same_form(self):
        assert consensus_lower_bound_flooding_rounds(10**5) == (
            cflood_lower_bound_flooding_rounds(10**5)
        )

    def test_known_d_logarithmic(self):
        assert known_d_upper_bound_flooding_rounds(2**10) == pytest.approx(10.0)

    @given(st.integers(16, 10**8))
    def test_gap_factor_positive(self, n):
        assert exponential_gap_factor(n) > 0

    def test_gap_grows(self):
        assert exponential_gap_factor(10**8) > exponential_gap_factor(10**4)


class TestImpliedBound:
    def test_pipeline_instantiation(self):
        b = implied_time_lower_bound(n=10**6, q=101)
        assert b.big_n == 3 * 10**6 * 101 + 4
        assert b.cc_bound_bits > 0
        assert b.implied_rounds == pytest.approx(b.cc_bound_bits / b.per_round_bits)
        assert b.implied_flooding_rounds == pytest.approx(b.implied_rounds / 10.0)

    def test_degenerate_bound_floors_at_zero(self):
        b = implied_time_lower_bound(n=100, q=99)
        assert b.cc_bound_bits == 0.0
        assert b.implied_rounds == 0.0

    def test_custom_frame_budget(self):
        b = implied_time_lower_bound(n=10**6, q=101, log_n_bits=1000.0)
        assert b.per_round_bits == 1000.0
