"""Tests for the HFN/MAX carry-over measurements."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.cc.disjointness import random_instance
from repro.core.carryover import measure_carryover

from ..conftest import disjointness_instances


class TestCarryover:
    @pytest.mark.parametrize("q", [17, 25])
    def test_answer0_blocks_hfn_and_max(self, q):
        inst = random_instance(3, q, seed=1, value=0, zero_zero_count=1)
        report = measure_carryover(inst)
        assert report.hfn_blocked_within_horizon
        assert report.max_blocked_within_horizon
        # the blockage scales with q (the Omega(q) of the theorem)
        assert report.far_to_a_rounds > report.horizon

    @pytest.mark.parametrize("q", [17, 25])
    def test_answer1_easy(self, q):
        inst = random_instance(3, q, seed=1, value=1)
        report = measure_carryover(inst)
        assert not report.hfn_blocked_within_horizon
        assert not report.max_blocked_within_horizon
        assert report.hear_from_all_rounds <= 10  # the constant diameter

    def test_blockage_grows_with_q(self):
        times = []
        for q in (9, 17, 25):
            inst = random_instance(2, q, seed=2, value=0, zero_zero_count=1)
            times.append(measure_carryover(inst).far_to_a_rounds)
        assert times[0] < times[1] < times[2]

    @given(inst=disjointness_instances(min_n=1, max_n=3, min_q=9, max_q=11, value=0))
    @settings(max_examples=8)
    def test_hfn_time_at_least_line_length(self, inst):
        # hearing from the far line node requires walking the line plus
        # crossing into Λ: at least ~(q-1)/2 rounds
        report = measure_carryover(inst)
        assert report.hear_from_all_rounds >= (inst.q - 1) // 2

    def test_hear_all_equals_far_node_time_on_answer0(self):
        # the far line node is the last to influence A_Γ
        inst = random_instance(3, 17, seed=3, value=0, zero_zero_count=1)
        report = measure_carryover(inst)
        assert report.hear_from_all_rounds == report.far_to_a_rounds
