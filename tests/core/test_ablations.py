"""Ablation tests: the construction's design choices are load-bearing.

Each test breaks one documented design decision of Sections 4-5 and
asserts that the paper's two-party simulation *visibly* diverges from
the reference execution — while the unbroken construction never does.
"""

from __future__ import annotations

import pytest

from repro.cc.disjointness import random_instance
from repro.core.ablations import (
    ablated_theorem6_network,
    cascade_escape_report,
    find_divergence,
)
from repro.protocols.flooding import GossipMaxNode


def gossip(uid):
    return GossipMaxNode(uid)


def first_divergence(seeds=range(10), **ablation):
    for seed in seeds:
        value = 0 if ablation.get("rule5_simultaneous") else None
        inst = random_instance(3, 11, seed=seed, value=value)
        d = find_divergence(inst, gossip, seed, **ablation)
        if d is not None:
            return d
    return None


class TestPaperConstructionIsSound:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_no_divergence_under_adaptive_rules(self, seed):
        inst = random_instance(3, 11, seed=seed)
        assert find_divergence(inst, gossip, seed) is None

    def test_cascade_contains_spoiled_influence(self):
        report = cascade_escape_report(simultaneous=False)
        assert report.contained


class TestAblationsBreakLemma5:
    def test_always_early_rule34_breaks_a_party(self):
        d = first_divergence(rule34_mode="early")
        assert d is not None
        assert d.kind in ("action", "payload")

    def test_always_late_rule34_breaks_a_party(self):
        d = first_divergence(rule34_mode="late")
        assert d is not None

    def test_simultaneous_removal_breaks_a_party(self):
        d = first_divergence(rule5_simultaneous=True)
        assert d is not None

    def test_simultaneous_removal_leaks_influence(self):
        report = cascade_escape_report(simultaneous=True)
        assert not report.contained
        # the leak is fast: a constant number of rounds, far below the
        # Omega(q) containment of the cascade
        assert report.rounds_to_reach_a <= 4
        assert report.rounds_to_reach_b <= 4


class TestAblatedNetworkStructure:
    def test_same_shape_different_schedule(self):
        inst = random_instance(3, 11, seed=1, value=0)
        ok = ablated_theorem6_network(inst)
        ab = ablated_theorem6_network(inst, rule5_simultaneous=True)
        assert ok.num_nodes == ab.num_nodes
        assert ok.bridges == ab.bridges
        recv = lambda uid: True
        # the schedules diverge in some early round
        assert any(
            ok.reference_edges(r, recv) != ab.reference_edges(r, recv)
            for r in range(1, 6)
        )

    def test_ablated_network_still_connected(self):
        inst = random_instance(2, 9, seed=3, value=0)
        ab = ablated_theorem6_network(inst, rule5_simultaneous=True)
        assert ab.schedule(9 + 3).all_connected()
