"""Tests for the Γ/Λ/Υ subnetwork builders."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.cc.disjointness import DisjointnessInstance
from repro.core.gamma import GammaSubnetwork
from repro.core.lambda_net import LambdaSubnetwork
from repro.core.upsilon import UpsilonSubnetwork, make_upsilon
from repro.errors import ConfigurationError

from ..conftest import disjointness_instances


class TestGammaStructure:
    def test_sizes(self, fig1_instance):
        g = GammaSubnetwork(4, 5, x=fig1_instance.x, y=fig1_instance.y)
        assert g.num_nodes == 2 + 3 * 4 * 2  # 2 specials + n groups * (q-1)/2 * 3
        assert g.num_nodes == len(list(g.node_ids))
        assert 3 * 4 * (5 - 1) // 2 + 2 == g.num_nodes

    def test_ids_contiguous_from_base(self, fig1_instance):
        g = GammaSubnetwork(4, 5, x=fig1_instance.x, y=fig1_instance.y, id_base=10)
        assert g.a_node == 10 and g.b_node == 11
        assert list(g.node_ids) == list(range(10, 10 + g.num_nodes))

    def test_group_labels_uniform(self, fig1_instance):
        g = GammaSubnetwork(4, 5, x=fig1_instance.x, y=fig1_instance.y)
        for c in g.chains:
            assert c.top_label == fig1_instance.x[c.group - 1]
            assert c.bottom_label == fig1_instance.y[c.group - 1]

    def test_spokes_always_present(self, fig1_instance):
        g = GammaSubnetwork(4, 5, x=fig1_instance.x, y=fig1_instance.y)
        for r in (1, 2, 5):
            edges = g.reference_edges(r, lambda uid: True)
            for c in g.chains:
                assert (min(g.a_node, c.top), max(g.a_node, c.top)) in edges
                assert (min(g.b_node, c.bottom), max(g.b_node, c.bottom)) in edges

    def test_line_nodes_iff_answer_zero(self, fig1_instance):
        g = GammaSubnetwork(4, 5, x=fig1_instance.x, y=fig1_instance.y)
        line = g.line_node_ids()
        assert len(line) == (5 - 1) // 2  # one full group of (0,0) chains
        assert g.line_head() == line[0]
        assert g.line_far_end() == line[-1]

        one = DisjointnessInstance((1, 4), (2, 4), 5)
        g1 = GammaSubnetwork(2, 5, x=one.x, y=one.y)
        assert g1.line_node_ids() == []
        assert g1.line_head() is None

    def test_line_nodes_form_reference_line(self, fig1_instance):
        g = GammaSubnetwork(4, 5, x=fig1_instance.x, y=fig1_instance.y)
        line = g.line_node_ids()
        edges = g.reference_edges(1, lambda uid: True)
        for u, v in zip(line, line[1:]):
            assert (min(u, v), max(u, v)) in edges

    @given(inst=disjointness_instances(min_q=5, max_q=9, value=0))
    def test_answer0_has_at_least_half_q_line_nodes(self, inst):
        g = GammaSubnetwork(inst.n, inst.q, x=inst.x, y=inst.y)
        assert len(g.line_node_ids()) >= (inst.q - 1) // 2


class TestBeliefEnforcement:
    def test_alice_belief_cannot_touch_y(self, fig1_instance):
        g = GammaSubnetwork(4, 5, x=fig1_instance.x, y=None)
        g.alice_edges(1)  # fine
        g.spoil_rounds_alice()  # fine
        with pytest.raises(ConfigurationError):
            g.bob_edges(1)
        with pytest.raises(ConfigurationError):
            g.spoil_rounds_bob()
        with pytest.raises(ConfigurationError):
            g.reference_edges(1, lambda uid: True)
        with pytest.raises(ConfigurationError):
            g.line_node_ids()

    def test_bob_belief_cannot_touch_x(self, fig1_instance):
        lam = LambdaSubnetwork(4, 5, x=None, y=fig1_instance.y)
        lam.bob_edges(1)
        lam.spoil_rounds_bob()
        with pytest.raises(ConfigurationError):
            lam.alice_edges(1)
        with pytest.raises(ConfigurationError):
            lam.mounting_points()

    def test_belief_chain_labels_partial(self, fig1_instance):
        g = GammaSubnetwork(4, 5, x=fig1_instance.x, y=None)
        assert all(c.bottom_label is None for c in g.chains)
        assert all(c.top_label is not None for c in g.chains)


class TestLambdaStructure:
    def test_sizes(self, fig1_instance):
        lam = LambdaSubnetwork(4, 5, x=fig1_instance.x, y=fig1_instance.y)
        assert lam.num_nodes == 2 + 3 * 4 * 3  # (q+1)/2 = 3 chains per centipede

    def test_shifted_capped_labels(self):
        lam = LambdaSubnetwork(1, 7, x=(2,), y=(3,))
        labels = [(c.top_label, c.bottom_label) for c in lam.chains]
        assert labels == [(2, 3), (4, 5), (6, 6), (6, 6)]

    def test_labels_for_zero_coordinate(self):
        lam = LambdaSubnetwork(1, 7, x=(0,), y=(0,))
        labels = [(c.top_label, c.bottom_label) for c in lam.chains]
        assert labels == [(0, 0), (2, 2), (4, 4), (6, 6)]

    def test_mid_line_edges_permanent_all_adversaries(self):
        lam = LambdaSubnetwork(2, 7, x=(0, 1), y=(0, 2))
        mids = [c.mid for c in lam.chains if c.group == 1]
        for r in (1, 2, 3, 6):
            for edges in (
                lam.reference_edges(r, lambda uid: True),
                lam.alice_edges(r),
                lam.bob_edges(r),
            ):
                for u, v in zip(mids, mids[1:]):
                    assert (min(u, v), max(u, v)) in edges

    def test_mounting_points_iff_zero_zero(self, fig1_instance):
        lam = LambdaSubnetwork(4, 5, x=fig1_instance.x, y=fig1_instance.y)
        points = lam.mounting_points()
        assert len(points) == 1  # exactly one (0,0) coordinate in Fig-1
        assert lam.first_mounting_point() == points[0]
        # mounting point is the middle of the witness centipede's 1st chain
        witness = fig1_instance.zero_zero_coordinates()[0] + 1
        assert points[0] == lam.chain_at(witness, 1).mid

    def test_cascade_rounds(self):
        # chain j carries labels (2j-2, 2j-2) and loses both edges at the
        # start of round j (Figure 2's cascade); the capped last chain is
        # never touched
        lam = LambdaSubnetwork(1, 7, x=(0,), y=(0,))
        receiving = lambda uid: True
        for j, c in enumerate(lam.chains, start=1):
            top = (min(c.top, c.mid), max(c.top, c.mid))
            bottom = (min(c.mid, c.bottom), max(c.mid, c.bottom))
            for r in range(1, 8):
                edges = lam.reference_edges(r, receiving)
                expected = (r < j) or c.top_label == 6
                assert (top in edges) == expected, (j, r)
                assert (bottom in edges) == expected, (j, r)


class TestUpsilon:
    @given(inst=disjointness_instances(value=1))
    def test_empty_on_answer_one(self, inst):
        assert make_upsilon(inst, id_base=100) is None

    @given(inst=disjointness_instances(value=0))
    def test_clone_on_answer_zero(self, inst):
        ups = make_upsilon(inst, id_base=1000)
        assert isinstance(ups, UpsilonSubnetwork)
        lam = LambdaSubnetwork(inst.n, inst.q, x=inst.x, y=inst.y)
        assert ups.num_nodes == lam.num_nodes
        assert ups.a_node == 1000
        assert ups.mounting_points()  # same witnesses, shifted ids
