"""Edge-case tests for the two-party simulation machinery."""

from __future__ import annotations

import pytest

from repro._util import bit_size
from repro.cc.disjointness import DisjointnessInstance, random_instance
from repro.core.simulation import NodeSpy, PartySimulator, TwoPartyReduction
from repro.errors import ConfigurationError
from repro.protocols.flooding import GossipMaxNode, TokenFloodNode
from repro.sim.actions import Receive, Send
from repro.sim.coins import CoinSource


def gossip(uid):
    return GossipMaxNode(uid)


class TestStepOrdering:
    def _alice(self, inst):
        return PartySimulator(
            "alice", "T6", inst.n, inst.q, inst.x, gossip, CoinSource(1)
        )

    def test_rounds_must_be_sequential(self, fig1_instance):
        alice = self._alice(fig1_instance)
        alice.step_actions(1)
        with pytest.raises(ConfigurationError):
            alice.step_actions(3)

    def test_delivery_requires_matching_actions(self, fig1_instance):
        alice = self._alice(fig1_instance)
        alice.step_actions(1)
        with pytest.raises(ConfigurationError):
            alice.step_delivery(2, ())

    def test_frame_structure(self, fig1_instance):
        alice = self._alice(fig1_instance)
        frame = alice.step_actions(1)
        names = [name for name, _ in frame]
        assert names == ["A_gamma", "A_lambda"]
        assert alice.bits_sent == bit_size(frame)
        assert alice.frames_sent == [frame]

    def test_bob_frame_names(self, fig1_instance):
        bob = PartySimulator(
            "bob", "T6", fig1_instance.n, fig1_instance.q,
            fig1_instance.y, gossip, CoinSource(1),
        )
        frame = bob.step_actions(1)
        assert [name for name, _ in frame] == ["B_gamma", "B_lambda"]

    def test_t7_frames_single_special(self, fig1_instance):
        alice = PartySimulator(
            "alice", "T7", fig1_instance.n, fig1_instance.q,
            fig1_instance.x, gossip, CoinSource(1),
        )
        frame = alice.step_actions(1)
        assert [name for name, _ in frame] == ["A_lambda"]


class TestNodeSpy:
    def test_records_send_and_receive(self):
        spy = NodeSpy(TokenFloodNode(2, source=1))
        act = spy.action(1, CoinSource(1).coins(2, 1))
        assert isinstance(act, Receive)
        spy.on_messages(1, (("tok", 1),))
        assert spy.history[1] == ("recv", (("tok", 1),))
        act = spy.action(2, CoinSource(1).coins(2, 2))
        assert isinstance(act, Send)
        assert spy.history[2] == ("send", ("tok", 1))

    def test_delegates_output(self):
        spy = NodeSpy(TokenFloodNode(1, source=1))
        assert spy.output() == ("informed",)


class TestReductionHorizonOverride:
    def test_custom_horizon(self, fig1_instance):
        red = TwoPartyReduction(fig1_instance, "T6", gossip, seed=1)
        out = red.run(horizon=1)
        assert out.rounds_simulated == 1

    def test_zero_horizon_decides_zero(self, fig1_instance):
        red = TwoPartyReduction(fig1_instance, "T6", gossip, seed=1)
        out = red.run(horizon=0)
        assert out.decision == 0 and out.total_bits == 0


class TestSpoilBookkeeping:
    def test_spoil_rounds_monotone_with_labels(self):
        # larger labels spoil later: the removal wave moves outward
        inst = DisjointnessInstance((0, 2, 4), (1, 3, 5), 7)
        alice = PartySimulator("alice", "T6", 3, 7, inst.x, gossip, CoinSource(1))
        gamma = alice.subnets[0]
        spoil = gamma.spoil_rounds_alice()
        mids = [gamma.chain_at(g, 1).mid for g in (1, 2, 3)]
        assert spoil[mids[0]] < spoil[mids[1]] < spoil[mids[2]]

    def test_specials_never_spoil_for_owner(self, fig1_instance):
        alice = PartySimulator(
            "alice", "T6", fig1_instance.n, fig1_instance.q,
            fig1_instance.x, gossip, CoinSource(1),
        )
        for uid in alice.my_specials.values():
            assert alice.spoil[uid] > 10**9
        for uid in alice.peer_specials.values():
            assert alice.spoil[uid] == 1
