"""Lemma-5 fidelity tests: the two-party simulation vs ground truth.

These are the most important tests in the repository.  For arbitrary
oracle protocols, instances, mappings and seeds, they assert that every
node Alice (Bob) simulates while it is non-spoiled behaves *identically*
to the same node in the reference execution — actions, payloads and
final state — even though Alice never sees y (and Bob never sees x).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.cc.disjointness import DisjointnessInstance, random_instance
from repro.core.simulation import (
    PartySimulator,
    TwoPartyReduction,
    run_reference_execution,
)
from repro.errors import ConfigurationError
from repro.protocols.cflood import CFloodKnownDNode
from repro.protocols.flooding import GossipMaxNode, TokenFloodNode
from repro.sim.actions import Receive, Send
from repro.sim.coins import CoinSource

from ..conftest import disjointness_instances


def gossip_factory(uid):
    return GossipMaxNode(uid)


def assert_fidelity(inst, mapping, factory, seed, state_probe=None):
    """Drive reduction + reference in lockstep; compare non-spoiled nodes."""
    T = (inst.q - 1) // 2
    ref = run_reference_execution(inst, mapping, factory, seed, rounds=T)
    red = TwoPartyReduction(inst, mapping, factory, seed)
    for r in range(1, T + 1):
        fa = red.alice.step_actions(r)
        fb = red.bob.step_actions(r)
        for party in (red.alice, red.bob):
            for uid in party.nodes:
                if party.spoil[uid] >= r:
                    act = party.actions_of(uid)
                    kind, payload = ref.spies[uid].history[r]
                    if isinstance(act, Send):
                        assert kind == "send" and payload == act.payload, (
                            party.party, uid, r,
                        )
                    else:
                        assert isinstance(act, Receive) and kind == "recv"
        red.alice.step_delivery(r, fb)
        red.bob.step_delivery(r, fa)
    if state_probe is not None:
        for party in (red.alice, red.bob):
            for uid, node in party.nodes.items():
                if party.spoil[uid] > T:
                    assert state_probe(node) == state_probe(ref.spies[uid].inner), (
                        party.party, uid,
                    )
    return red, ref


class TestLemma5Fidelity:
    @pytest.mark.parametrize("mapping", ["T6", "T7"])
    @pytest.mark.parametrize("value", [0, 1])
    @pytest.mark.parametrize("seed", [1, 2])
    def test_gossip_oracle(self, mapping, value, seed):
        inst = random_instance(3, 9, seed=seed + 10 * value, value=value)
        assert_fidelity(inst, mapping, gossip_factory, seed, state_probe=lambda n: n.best)

    @pytest.mark.parametrize("mapping", ["T6", "T7"])
    def test_cflood_oracle(self, mapping):
        inst = random_instance(3, 9, seed=5, value=0)
        factory = lambda uid: CFloodKnownDNode(uid, source=1, d_param=10)
        assert_fidelity(inst, mapping, factory, 3, state_probe=lambda n: n.informed)

    @pytest.mark.parametrize("mapping", ["T6", "T7"])
    def test_token_flood_oracle(self, mapping):
        inst = random_instance(2, 9, seed=6, value=1)
        factory = lambda uid: TokenFloodNode(uid, source=1)
        assert_fidelity(
            inst, mapping, factory, 4, state_probe=lambda n: (n.informed, n.informed_round)
        )

    @given(inst=disjointness_instances(min_n=1, max_n=3, min_q=5, max_q=9))
    @settings(max_examples=12)
    def test_random_instances_gossip(self, inst):
        assert_fidelity(inst, "T6", gossip_factory, 7, state_probe=lambda n: n.best)

    def test_figure1_instance(self, fig1_instance):
        assert_fidelity(
            fig1_instance, "T6", gossip_factory, 9, state_probe=lambda n: n.best
        )


class TestInformationSeparation:
    def test_alice_objects_hold_no_y(self, fig1_instance):
        coin = CoinSource(1)
        alice = PartySimulator(
            "alice", "T6", fig1_instance.n, fig1_instance.q,
            fig1_instance.x, gossip_factory, coin,
        )
        for subnet in alice.subnets:
            assert subnet.y is None
            with pytest.raises(ConfigurationError):
                subnet.bob_edges(1)

    def test_bob_objects_hold_no_x(self, fig1_instance):
        coin = CoinSource(1)
        bob = PartySimulator(
            "bob", "T6", fig1_instance.n, fig1_instance.q,
            fig1_instance.y, gossip_factory, coin,
        )
        for subnet in bob.subnets:
            assert subnet.x is None

    def test_t7_party_never_instantiates_upsilon(self, fig1_instance):
        coin = CoinSource(1)
        alice = PartySimulator(
            "alice", "T7", fig1_instance.n, fig1_instance.q,
            fig1_instance.x, gossip_factory, coin,
        )
        # Alice's node universe is exactly the Λ block, although the
        # answer is 0 and the reference network carries a Υ clone too
        n1 = alice.subnets[0].num_nodes
        assert set(alice.nodes) <= set(range(1, n1 + 1))

    def test_invalid_party_or_mapping(self, fig1_instance):
        coin = CoinSource(1)
        with pytest.raises(ConfigurationError):
            PartySimulator("carol", "T6", 4, 5, fig1_instance.x, gossip_factory, coin)
        with pytest.raises(ConfigurationError):
            PartySimulator("alice", "T9", 4, 5, fig1_instance.x, gossip_factory, coin)


class TestFrameAccounting:
    def test_frames_are_logarithmic(self, fig1_instance):
        red = TwoPartyReduction(fig1_instance, "T6", gossip_factory, seed=2)
        out = red.run()
        # 2 specials/frame, each payload O(log N): a loose linear cap
        per_round = out.total_bits / max(1, out.rounds_simulated)
        assert per_round <= 64 * 8  # generous O(log N) envelope

    def test_bits_symmetric_roles(self, fig1_instance):
        red = TwoPartyReduction(fig1_instance, "T6", gossip_factory, seed=2)
        out = red.run()
        assert out.bits_alice_to_bob > 0
        assert out.bits_bob_to_alice > 0

    def test_deterministic_in_seed(self, fig1_instance):
        a = TwoPartyReduction(fig1_instance, "T6", gossip_factory, seed=5).run()
        b = TwoPartyReduction(fig1_instance, "T6", gossip_factory, seed=5).run()
        assert (a.total_bits, a.decision) == (b.total_bits, b.decision)


class TestReductionDecisions:
    @pytest.mark.parametrize("value", [0, 1])
    def test_fast_oracle_decides_one(self, value):
        # horizon 12 > d_param 10: the fast oracle always terminates,
        # hence decision 1 — correct iff truth is 1
        inst = random_instance(3, 25, seed=1 + value, value=value)
        from repro.core.composition import theorem6_network
        net = theorem6_network(inst)
        src = net.special_nodes()["A_gamma"]
        factory = lambda uid: CFloodKnownDNode(uid, source=src, d_param=10)
        out = TwoPartyReduction(inst, "T6", factory, seed=1).run()
        assert out.decision == 1
        assert out.correct == (value == 1)
        assert out.watched_terminated_round == 10

    @pytest.mark.parametrize("value", [0, 1])
    def test_conservative_oracle_decides_zero(self, value):
        inst = random_instance(3, 25, seed=3 + value, value=value)
        from repro.core.composition import theorem6_network
        net = theorem6_network(inst)
        src = net.special_nodes()["A_gamma"]
        factory = lambda uid: CFloodKnownDNode(uid, source=src, d_param=net.num_nodes - 1)
        out = TwoPartyReduction(inst, "T6", factory, seed=1).run()
        assert out.decision == 0
        assert out.watched_terminated_round is None

    def test_reduction_never_diverges(self):
        # SimulationDiverged would indicate a Lemma-3/4 violation
        for seed in range(4):
            inst = random_instance(2, 11, seed=seed)
            TwoPartyReduction(inst, "T6", gossip_factory, seed=seed).run()
            TwoPartyReduction(inst, "T7", gossip_factory, seed=seed).run()
