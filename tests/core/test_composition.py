"""Tests for the composition networks (Theorem-6/7 mappings)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.composition import (
    theorem6_network,
    theorem6_size,
    theorem7_network,
    theorem7_sizes,
)
from repro.core.diameter_gap import ANSWER1_DIAMETER_BOUND, measure_dichotomy
from repro.core.gamma import GammaSubnetwork
from repro.core.lambda_net import LambdaSubnetwork

from ..conftest import disjointness_instances


class TestTheorem6Mapping:
    @given(inst=disjointness_instances(min_q=5, max_q=9))
    def test_size_formula(self, inst):
        net = theorem6_network(inst)
        assert net.num_nodes == theorem6_size(inst.n, inst.q) == 3 * inst.n * inst.q + 4

    @given(inst=disjointness_instances(min_q=5, max_q=9))
    def test_ids_fixed_scheme(self, inst):
        net = theorem6_network(inst)
        assert net.node_ids == list(range(1, net.num_nodes + 1))

    @given(inst=disjointness_instances(min_q=5, max_q=9))
    def test_bridge_structure(self, inst):
        net = theorem6_network(inst)
        gamma, lam = net.subnets
        assert isinstance(gamma, GammaSubnetwork) and isinstance(lam, LambdaSubnetwork)
        a_bridge = (min(gamma.a_node, lam.a_node), max(gamma.a_node, lam.a_node))
        b_bridge = (min(gamma.b_node, lam.b_node), max(gamma.b_node, lam.b_node))
        assert a_bridge in net.bridges and b_bridge in net.bridges
        assert len(net.bridges) == (3 if inst.evaluate() == 0 else 2)

    @given(inst=disjointness_instances(min_q=5, max_q=9))
    @settings(max_examples=15)
    def test_connected_every_round(self, inst):
        net = theorem6_network(inst)
        sched = net.schedule(inst.q + 3)
        assert sched.all_connected()

    @given(inst=disjointness_instances(min_q=5, max_q=9))
    @settings(max_examples=10)
    def test_connected_with_sending_middles(self, inst):
        net = theorem6_network(inst)
        sched = net.schedule(inst.q + 3, receiving_policy=lambda uid, r: False)
        assert sched.all_connected()

    def test_simple_mapping_sensitive_bridges(self, fig1_instance):
        # (A_Γ, A_Λ) endpoints never spoil for Alice; (B_Γ, B_Λ) for Bob
        net = theorem6_network(fig1_instance)
        gamma, lam = net.subnets
        sa = {**gamma.spoil_rounds_alice(), **lam.spoil_rounds_alice()}
        sb = {**gamma.spoil_rounds_bob(), **lam.spoil_rounds_bob()}
        horizon = net.horizon
        for uid in (gamma.a_node, lam.a_node):
            assert sa[uid] > horizon
        for uid in (gamma.b_node, lam.b_node):
            assert sb[uid] > horizon
        # the line bridge's endpoints are spoiled for both from round 1
        l_gamma, l_lambda = gamma.line_head(), lam.first_mounting_point()
        assert sa[l_gamma] == 1 and sb[l_gamma] == 1
        assert sa[l_lambda] == 1 and sb[l_lambda] == 1


class TestTheorem7Mapping:
    @given(inst=disjointness_instances(min_q=5, max_q=9, value=1))
    def test_answer1_is_bare_lambda(self, inst):
        net = theorem7_network(inst)
        assert len(net.subnets) == 1
        assert net.bridges == frozenset()
        n1, _ = theorem7_sizes(inst.n, inst.q)
        assert net.num_nodes == n1

    @given(inst=disjointness_instances(min_q=5, max_q=9, value=0))
    def test_answer0_doubles(self, inst):
        net = theorem7_network(inst)
        assert len(net.subnets) == 2
        n1, n0 = theorem7_sizes(inst.n, inst.q)
        assert net.num_nodes == n0 == 2 * n1
        assert len(net.bridges) == 1
        (u, v), = net.bridges
        lam, ups = net.subnets
        assert u == lam.first_mounting_point()
        assert v == ups.first_mounting_point()

    @given(inst=disjointness_instances(min_q=5, max_q=9))
    @settings(max_examples=15)
    def test_connected_every_round(self, inst):
        net = theorem7_network(inst)
        sched = net.schedule(inst.q + 3)
        assert sched.all_connected()

    def test_best_estimate_error_is_one_third(self):
        n1, n0 = theorem7_sizes(3, 9)
        n_prime = 2 * n1 * n0 / (n1 + n0)  # minimax estimate
        err1 = abs(n_prime - n1) / n1
        err0 = abs(n_prime - n0) / n0
        assert err1 == pytest.approx(1 / 3)
        assert err0 == pytest.approx(1 / 3)


class TestDiameterDichotomy:
    @pytest.mark.parametrize("q", [9, 25])
    def test_answer1_diameter_at_most_10(self, q):
        from repro.cc.disjointness import random_instance

        inst = random_instance(3, q, seed=1, value=1)
        report = measure_dichotomy(inst, "T6")
        assert report.dynamic_diameter is not None
        assert report.dynamic_diameter <= ANSWER1_DIAMETER_BOUND
        if report.horizon >= ANSWER1_DIAMETER_BOUND:
            # with the paper's q = 120s + 1 sizing the horizon always
            # dominates the constant diameter; tiny q can undercut it
            assert not report.flood_exceeds_horizon

    @pytest.mark.parametrize("q", [9, 17])
    def test_answer0_flood_exceeds_horizon(self, q):
        from repro.cc.disjointness import random_instance

        inst = random_instance(3, q, seed=1, value=0, zero_zero_count=1)
        report = measure_dichotomy(inst, "T6", compute_diameter=False)
        assert report.flood_exceeds_horizon

    def test_answer0_diameter_grows_with_q(self):
        from repro.cc.disjointness import random_instance

        diameters = []
        for q in (9, 17):
            inst = random_instance(2, q, seed=1, value=0, zero_zero_count=1)
            report = measure_dichotomy(inst, "T6")
            diameters.append(report.dynamic_diameter)
        assert diameters[0] is not None and diameters[1] is not None
        assert diameters[1] > diameters[0] >= (9 - 1) // 2
