"""Tests for the doubling-guess CFLOOD heuristic."""

from __future__ import annotations

import pytest

from repro.network.adversaries import OverlappingStarsAdversary, StaticAdversary
from repro.network.generators import lollipop_edges
from repro.protocols.doubling import CFloodDoublingNode, DoublingSchedule
from repro.sim.coins import CoinSource
from repro.sim.engine import SynchronousEngine


class TestDoublingSchedule:
    def test_phase_structure(self):
        s = DoublingSchedule(16, components=8)
        assert s.flood_budget(3) == 8
        assert s.phase_length(1) == s.flood_budget(1) + s.count_budget(1)

    def test_locate_stages(self):
        s = DoublingSchedule(16, components=8)
        k, stage, off, length = s.locate(1)
        assert (k, stage, off) == (1, "flood", 1)
        k, stage, off, length = s.locate(s.flood_budget(1) + 1)
        assert (k, stage, off) == (1, "count", 1)
        total1 = s.phase_length(1)
        k, stage, off, _ = s.locate(total1 + 1)
        assert (k, stage, off) == (2, "flood", 1)

    def test_locate_rejects_round_zero(self):
        with pytest.raises(Exception):
            DoublingSchedule(8).locate(0)


class TestDoublingHeuristic:
    def _run(self, ids, adv, seed=1, thr=0.75, max_rounds=40_000):
        n = len(ids)
        nodes = {
            u: CFloodDoublingNode(u, source=ids[0], num_nodes=n, threshold=thr)
            for u in ids
        }
        eng = SynchronousEngine(nodes, adv, CoinSource(seed))
        trace = eng.run(max_rounds)
        return trace, nodes

    def test_confirms_with_full_coverage_on_benign_schedule(self):
        ids = list(range(1, 17))
        trace, nodes = self._run(ids, OverlappingStarsAdversary(ids))
        assert trace.termination_round is not None
        assert all(nodes[u].informed for u in ids)

    def test_premature_on_lollipop(self):
        ids = list(range(1, 25))
        clique, path = ids[:19], ids[19:]
        adv = StaticAdversary(ids, lollipop_edges(clique, path))
        trace, nodes = self._run(ids, adv)
        assert trace.termination_round is not None  # it *does* confirm...
        informed = sum(nodes[u].informed for u in ids)
        assert informed < len(ids)  # ...while the tail is uninformed

    def test_source_records_estimates(self):
        ids = list(range(1, 13))
        trace, nodes = self._run(ids, OverlappingStarsAdversary(ids))
        assert nodes[1].estimates  # (phase, estimate) history
        assert all(est >= 0 for _, est in nodes[1].estimates)

    def test_threshold_validated(self):
        with pytest.raises(Exception):
            CFloodDoublingNode(1, source=1, num_nodes=8, threshold=0.0)
