"""Tests for known-D consensus, MAX, and HEAR-FROM-N."""

from __future__ import annotations

import pytest

from repro.network.adversaries import (
    OverlappingStarsAdversary,
    RandomConnectedAdversary,
)
from repro.network.causality import causal_closure, dynamic_diameter
from repro.protocols.consensus import ConsensusKnownDNode
from repro.protocols.hearfrom import HearFromAllNode
from repro.protocols.max_id import MaxIdNode, max_rounds_budget
from repro.sim.coins import CoinSource
from repro.sim.engine import SynchronousEngine


IDS = list(range(1, 15))


def run(nodes, adv, seed=1, max_rounds=2000):
    eng = SynchronousEngine(nodes, adv, CoinSource(seed))
    return eng.run(max_rounds), nodes


class TestMaxId:
    def test_budget_formula(self):
        assert max_rounds_budget(2, 16) == 32
        assert max_rounds_budget(1, 2, factor=1.0) == 1

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_all_learn_max(self, seed):
        adv = OverlappingStarsAdversary(IDS)
        budget = max_rounds_budget(2, len(IDS))
        trace, nodes = run({u: MaxIdNode(u, total_rounds=budget) for u in IDS}, adv, seed)
        assert trace.termination_round == budget
        assert all(trace.outputs[u] == ("max", max(IDS)) for u in IDS)

    def test_custom_values(self):
        adv = OverlappingStarsAdversary(IDS)
        budget = max_rounds_budget(2, len(IDS))
        values = {u: 1000 - u for u in IDS}
        trace, nodes = run(
            {u: MaxIdNode(u, total_rounds=budget, value=values[u]) for u in IDS}, adv
        )
        assert all(trace.outputs[u] == ("max", 999) for u in IDS)


class TestConsensusKnownD:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_agreement_and_validity(self, seed):
        adv = OverlappingStarsAdversary(IDS)
        budget = max_rounds_budget(2, len(IDS))
        values = {u: u % 2 for u in IDS}
        trace, nodes = run(
            {u: ConsensusKnownDNode(u, values[u], total_rounds=budget) for u in IDS},
            adv,
            seed,
        )
        decisions = {o[1] for o in trace.outputs.values()}
        assert len(decisions) == 1
        assert decisions.pop() in set(values.values())

    def test_unanimity_preserved(self):
        adv = RandomConnectedAdversary(IDS, seed=3)
        budget = max_rounds_budget(8, len(IDS))
        trace, nodes = run(
            {u: ConsensusKnownDNode(u, 1, total_rounds=budget) for u in IDS}, adv
        )
        assert {o[1] for o in trace.outputs.values()} == {1}

    def test_decides_max_id_value_whp(self):
        adv = OverlappingStarsAdversary(IDS)
        budget = max_rounds_budget(2, len(IDS))
        trace, nodes = run(
            {u: ConsensusKnownDNode(u, u % 2, total_rounds=budget) for u in IDS}, adv
        )
        assert {o[1] for o in trace.outputs.values()} == {max(IDS) % 2}


class TestHearFromAll:
    def test_terminates_after_d(self):
        adv = OverlappingStarsAdversary(IDS)
        d = dynamic_diameter(adv.schedule(20), max_diameter=20)
        trace, nodes = run({u: HearFromAllNode(u, d_param=d) for u in IDS}, adv)
        assert trace.termination_round == d

    def test_causal_guarantee_holds(self):
        # the definitional claim behind the protocol: within D rounds
        # every node's round-0 state causally reaches everyone
        adv = OverlappingStarsAdversary(IDS)
        sched = adv.schedule(20)
        d = dynamic_diameter(sched, max_diameter=20)
        for u in IDS:
            reached = causal_closure(sched, [u], start_round=0, rounds=d)
            assert reached == frozenset(IDS)

    def test_gossip_side_channel_collects_ids(self):
        adv = OverlappingStarsAdversary(IDS)
        trace, nodes = run({u: HearFromAllNode(u, d_param=100) for u in IDS}, adv, max_rounds=100)
        # after 100 gossip rounds on a D=2 network, ids spread widely
        assert all(len(nodes[u].heard_ids) > len(IDS) // 2 for u in IDS)


class TestOrConsensus:
    """Deterministic known-D binary consensus: exact, zero error."""

    def _decide(self, values, adv, ids, d):
        from repro.protocols.consensus import OrConsensusNode

        nodes = {u: OrConsensusNode(u, values[u], d_param=d) for u in ids}
        trace = SynchronousEngine(nodes, adv, CoinSource(1)).run(d + 2)
        assert trace.termination_round == d
        decisions = {o[1] for o in trace.outputs.values()}
        assert len(decisions) == 1
        return decisions.pop()

    def test_or_semantics_exact(self):
        from repro.network.adversaries import StaticAdversary
        from repro.network.generators import line_edges

        ids = list(range(1, 11))
        adv = StaticAdversary(ids, line_edges(ids))
        d = len(ids) - 1
        # a single 1 at the far end still wins: OR
        values = {u: 0 for u in ids}
        values[ids[-1]] = 1
        assert self._decide(values, adv, ids, d) == 1
        # all-zero stays zero (validity, deterministically)
        assert self._decide({u: 0 for u in ids}, adv, ids, d) == 0
        # all-one stays one
        assert self._decide({u: 1 for u in ids}, adv, ids, d) == 1

    def test_exact_on_every_seedless_schedule(self):
        # determinism: identical outcome across coin seeds (no coins used)
        ids = list(range(1, 9))
        adv = OverlappingStarsAdversary(ids)
        from repro.protocols.consensus import OrConsensusNode

        outcomes = set()
        for seed in range(4):
            nodes = {u: OrConsensusNode(u, 1 if u == 3 else 0, d_param=2) for u in ids}
            trace = SynchronousEngine(nodes, adv, CoinSource(seed)).run(4)
            outcomes.add(tuple(sorted((u, o[1]) for u, o in trace.outputs.items())))
        assert len(outcomes) == 1
        assert all(v == 1 for _, v in next(iter(outcomes)))
