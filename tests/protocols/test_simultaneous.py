"""Tests for simultaneous consensus (the Kuhn-Moses-Oshman contrast)."""

from __future__ import annotations

import pytest

from repro.network.adversaries import OverlappingStarsAdversary, StaticAdversary
from repro.network.generators import line_edges
from repro.protocols.max_id import max_rounds_budget
from repro.protocols.simultaneous import (
    SimultaneousConsensusKnownDNode,
    StabilizingConsensusNode,
)
from repro.sim.coins import CoinSource
from repro.sim.engine import SynchronousEngine


def run(nodes, adv, seed=1, max_rounds=4000):
    eng = SynchronousEngine(nodes, adv, CoinSource(seed))
    trace = eng.run(max_rounds)
    return trace, nodes


class TestKnownD:
    def test_everyone_decides_same_round(self):
        ids = list(range(1, 15))
        adv = OverlappingStarsAdversary(ids)
        T = max_rounds_budget(2, len(ids))
        trace, nodes = run(
            {u: SimultaneousConsensusKnownDNode(u, u % 2, total_rounds=T) for u in ids},
            adv,
        )
        outs = list(trace.outputs.values())
        decide_rounds = {o[2] for o in outs}
        assert decide_rounds == {T}  # simultaneity
        assert len({o[1] for o in outs}) == 1  # agreement
        assert outs[0][1] == max(ids) % 2  # max id's value won

    @pytest.mark.parametrize("seed", [2, 3])
    def test_validity(self, seed):
        ids = list(range(1, 9))
        adv = OverlappingStarsAdversary(ids)
        T = max_rounds_budget(2, len(ids))
        trace, _ = run(
            {u: SimultaneousConsensusKnownDNode(u, 1, total_rounds=T) for u in ids},
            adv,
            seed,
        )
        assert {o[1] for o in trace.outputs.values()} == {1}


class TestUnknownDStabilizing:
    def test_agreement_but_not_simultaneity_on_line(self):
        ids = list(range(1, 13))
        adv = StaticAdversary(ids, line_edges(ids))
        trace, nodes = run(
            {u: StabilizingConsensusNode(u, u % 2) for u in ids}, adv, max_rounds=8000
        )
        outs = list(trace.outputs.values())
        assert all(o is not None for o in outs)
        assert len({o[1] for o in outs}) == 1  # agreement still holds
        decide_rounds = {o[2] for o in outs}
        # ...but decisions spread across rounds: simultaneity violated,
        # the [15] sensitivity made visible
        assert len(decide_rounds) > 1

    def test_decides_at_power_of_two_boundaries(self):
        ids = list(range(1, 9))
        adv = OverlappingStarsAdversary(ids)
        trace, nodes = run(
            {u: StabilizingConsensusNode(u, 0) for u in ids}, adv, max_rounds=4000
        )
        for out in trace.outputs.values():
            r = out[2]
            assert r & (r - 1) == 0  # power of two

    def test_min_phase_delays_decisions(self):
        ids = list(range(1, 9))
        adv = OverlappingStarsAdversary(ids)
        _, eager = run(
            {u: StabilizingConsensusNode(u, 0, min_phase=2) for u in ids}, adv
        )
        _, patient = run(
            {u: StabilizingConsensusNode(u, 0, min_phase=5) for u in ids}, adv
        )
        assert min(n.decided_round for n in patient.values()) >= min(
            n.decided_round for n in eager.values()
        )
