"""Tests for flooding primitives and CFLOOD."""

from __future__ import annotations

import pytest

from repro.network.adversaries import (
    OverlappingStarsAdversary,
    RandomConnectedAdversary,
    RotatingStarAdversary,
    StaticAdversary,
)
from repro.network.causality import dynamic_diameter
from repro.network.generators import line_edges
from repro.protocols.cflood import (
    CONFIRMED,
    OBSERVER,
    CFloodConservativeNode,
    CFloodKnownDNode,
    cflood_factory,
)
from repro.protocols.flooding import GossipMaxNode, TokenFloodNode
from repro.sim.coins import CoinSource
from repro.sim.engine import SynchronousEngine


IDS = list(range(1, 9))


def run(nodes, adv, seed=1, max_rounds=500):
    eng = SynchronousEngine(nodes, adv, CoinSource(seed))
    return eng.run(max_rounds), nodes


class TestTokenFlood:
    def test_completes_in_exactly_d_on_line(self):
        adv = StaticAdversary(IDS, line_edges(IDS))
        trace, nodes = run({u: TokenFloodNode(u, source=1) for u in IDS}, adv)
        assert trace.termination_round == len(IDS) - 1
        assert all(nodes[u].informed for u in IDS)
        # node k is informed exactly at round k-1 on the line
        for k, u in enumerate(IDS):
            assert nodes[u].informed_round == k

    def test_completes_in_d_on_any_schedule(self):
        for adv in (
            OverlappingStarsAdversary(IDS),
            RotatingStarAdversary(IDS),
            RandomConnectedAdversary(IDS, seed=4),
        ):
            d = dynamic_diameter(adv.schedule(40), max_diameter=40)
            trace, nodes = run({u: TokenFloodNode(u, source=1) for u in IDS}, adv)
            assert trace.termination_round is not None
            assert trace.termination_round <= d

    def test_custom_token(self):
        ids = [1, 2, 3, 4]
        adv = StaticAdversary(ids, line_edges(ids))
        trace, nodes = run(
            {u: TokenFloodNode(u, source=1, token=("p", 42)) for u in ids}, adv
        )
        assert all(nodes[u].informed for u in ids)


class TestGossipMax:
    def test_converges_whp(self):
        adv = RandomConnectedAdversary(IDS, seed=7)
        nodes = {u: GossipMaxNode(u) for u in IDS}
        eng = SynchronousEngine(nodes, adv, CoinSource(3))
        eng.run(200, stop=lambda ns: all(n.best == max(IDS) for n in ns.values()))
        assert all(n.best == max(IDS) for n in nodes.values())

    def test_never_outputs(self):
        assert GossipMaxNode(1).output() is None

    def test_best_is_monotone_max(self):
        n = GossipMaxNode(5)
        n.on_messages(1, (("max", 3), ("max", 9)))
        assert n.best == 9
        n.on_messages(2, (("max", 4),))
        assert n.best == 9


class TestCFloodKnownD:
    def test_correct_with_true_d(self):
        adv = StaticAdversary(IDS, line_edges(IDS))
        d = len(IDS) - 1
        trace, nodes = run({u: CFloodKnownDNode(u, 1, d_param=d) for u in IDS}, adv)
        assert trace.termination_round == d
        assert trace.outputs[1] == CONFIRMED
        assert all(trace.outputs[u] == OBSERVER for u in IDS[1:])
        assert all(nodes[u].informed for u in IDS)

    def test_premature_confirm_with_small_d(self):
        # fed D=2 on a line of diameter 7, the source confirms while the
        # far end is uninformed — the failure Theorem 6 proves inevitable
        adv = StaticAdversary(IDS, line_edges(IDS))
        trace, nodes = run({u: CFloodKnownDNode(u, 1, d_param=2) for u in IDS}, adv)
        assert trace.termination_round == 2
        assert not nodes[IDS[-1]].informed

    def test_conservative_always_correct(self):
        for adv in (
            StaticAdversary(IDS, line_edges(IDS)),
            OverlappingStarsAdversary(IDS),
            RandomConnectedAdversary(IDS, seed=9),
        ):
            trace, nodes = run(
                {u: CFloodConservativeNode(u, 1, num_nodes=len(IDS)) for u in IDS}, adv
            )
            assert trace.termination_round == len(IDS) - 1
            assert all(nodes[u].informed for u in IDS)

    def test_factory_variants(self):
        f = cflood_factory(source=1, d_param=3)
        assert isinstance(f(2), CFloodKnownDNode)
        g = cflood_factory(source=1, num_nodes=8)
        assert isinstance(g(2), CFloodConservativeNode)
        with pytest.raises(Exception):
            cflood_factory(source=1)
