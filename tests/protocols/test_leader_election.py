"""Tests for the Section-7 leader-election protocol."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.network.adversaries import (
    OverlappingStarsAdversary,
    RandomConnectedAdversary,
    StaticAdversary,
)
from repro.network.generators import line_edges
from repro.protocols.consensus import ConsensusFromLeaderNode
from repro.protocols.leader_election import STAGE_NAMES, LeaderElectNode, StageSchedule
from repro.sim.coins import CoinSource
from repro.sim.engine import SynchronousEngine


def elect(ids, adv, n_est, seed, max_rounds=40_000, node_cls=LeaderElectNode, **kw):
    nodes = {u: node_cls(u, n_estimate=n_est, **kw) for u in ids}
    eng = SynchronousEngine(nodes, adv, CoinSource(seed))
    trace = eng.run(max_rounds)
    return trace, nodes


class TestStageSchedule:
    def test_phase_lengths(self):
        s = StageSchedule(16, alpha=2.0, components=8)
        assert s.flood_budget(1) == 2 * 2 * 4
        assert s.count_budget(1) == 8 * s.flood_budget(1)
        assert s.phase_length(1) == 2 * (s.flood_budget(1) + s.count_budget(1))

    def test_locate_covers_all_rounds(self):
        s = StageSchedule(16, components=8)
        total = s.rounds_through_phase(3)
        seen = set()
        prev_key = None
        for r in range(1, total + 1):
            phase, stage, off, length = s.locate(r)
            assert 1 <= off <= length
            assert 0 <= stage <= 3
            key = (phase, stage)
            if key != prev_key:
                assert off == 1  # stages begin at offset 1
                seen.add(key)
                prev_key = key
        assert seen == {(k, s_) for k in (1, 2, 3) for s_ in range(4)}

    @given(st.integers(1, 10**6))
    def test_locate_deterministic(self, r):
        a = StageSchedule(32, components=8)
        b = StageSchedule(32, components=8)
        assert a.locate(r) == b.locate(r)

    def test_budgets_double_with_phase(self):
        s = StageSchedule(64)
        assert s.flood_budget(4) == 2 * s.flood_budget(3)

    def test_stage_names(self):
        assert len(STAGE_NAMES) == 4


class TestElection:
    def test_unique_max_leader_small_d(self):
        ids = list(range(1, 13))
        trace, nodes = elect(ids, OverlappingStarsAdversary(ids), 12, seed=1)
        assert trace.termination_round is not None
        leaders = {o[1] for o in trace.outputs.values()}
        assert leaders == {12}
        assert nodes[12].elected_round is not None

    def test_unique_leader_static_line(self):
        ids = list(range(1, 9))
        trace, nodes = elect(
            ids, StaticAdversary(ids, line_edges(ids)), 8, seed=2, max_rounds=60_000
        )
        assert trace.termination_round is not None
        assert {o[1] for o in trace.outputs.values()} == {8}

    @pytest.mark.parametrize("seed", [3, 4, 5])
    def test_agreement_across_seeds(self, seed):
        ids = list(range(1, 11))
        trace, nodes = elect(ids, RandomConnectedAdversary(ids, seed=6), 10, seed=seed)
        assert trace.termination_round is not None
        assert len({o[1] for o in trace.outputs.values()}) == 1

    def test_estimate_error_within_bound_ok(self):
        # c = 1/3 - 0.25 > 0: protocol must still elect
        ids = list(range(1, 13))
        for err in (-0.25, 0.25):
            trace, _ = elect(ids, OverlappingStarsAdversary(ids), (1 + err) * 12, seed=7)
            assert trace.termination_round is not None, err

    def test_overestimate_beyond_third_stalls(self):
        # tau >= N: no candidate can ever claim a majority
        ids = list(range(1, 13))
        trace, nodes = elect(
            ids, OverlappingStarsAdversary(ids), 1.5 * 12, seed=8, max_rounds=15_000
        )
        assert trace.termination_round is None
        assert all(o is None for o in trace.outputs.values())

    def test_pre_lock_count_limits_rollback_traffic(self):
        # Section 7's "avoid excessive lock roll back": without the
        # pre-lock majority count, failed lock acquisitions (and hence
        # unlock floods) multiply
        ids = list(range(1, 11))
        traffic = {}
        for skip in (False, True):
            nodes = {
                u: LeaderElectNode(u, n_estimate=10, skip_seen_count=skip)
                for u in ids
            }
            eng = SynchronousEngine(
                nodes, StaticAdversary(ids, line_edges(ids)), CoinSource(3)
            )
            trace = eng.run(80_000)
            assert trace.termination_round is not None
            traffic[skip] = (
                sum(n.lock_floods_started for n in nodes.values()),
                sum(n.unlocks_issued for n in nodes.values()),
            )
        assert traffic[True][0] > traffic[False][0]
        assert traffic[True][1] > traffic[False][1]
        assert traffic[False][1] == 0  # the paper's design: no roll-back

    def test_never_two_leaders(self):
        ids = list(range(1, 11))
        for seed in range(6):
            trace, nodes = elect(ids, OverlappingStarsAdversary(ids), 10, seed=seed)
            self_declared = [u for u in ids if nodes[u].leader == u]
            assert len(self_declared) <= 1


class TestConsensusFromLeader:
    def test_decides_leader_value(self):
        ids = list(range(1, 11))
        nodes = {
            u: ConsensusFromLeaderNode(u, n_estimate=10, value=u % 3) for u in ids
        }
        eng = SynchronousEngine(nodes, OverlappingStarsAdversary(ids), CoinSource(5))
        trace = eng.run(40_000)
        assert trace.termination_round is not None
        decisions = {o[1] for o in trace.outputs.values()}
        assert len(decisions) == 1  # agreement
        assert decisions.pop() in {u % 3 for u in ids}  # validity

    def test_validity_unanimous(self):
        ids = list(range(1, 9))
        nodes = {u: ConsensusFromLeaderNode(u, n_estimate=8, value=1) for u in ids}
        eng = SynchronousEngine(nodes, OverlappingStarsAdversary(ids), CoinSource(6))
        trace = eng.run(40_000)
        assert {o[1] for o in trace.outputs.values()} == {1}
