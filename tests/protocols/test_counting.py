"""Tests for exponential-minimum counting and the majority threshold."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.network.adversaries import OverlappingStarsAdversary
from repro.protocols.counting import (
    GRID_BASE,
    default_components,
    dequantize,
    draw_exponentials,
    estimate_count,
    majority_threshold,
    merge_min,
    quantize_up,
)
from repro.protocols.hearfrom import CountNodesNode, count_rounds_budget
from repro.sim.coins import CoinSource
from repro.sim.engine import SynchronousEngine


class TestQuantization:
    @given(st.floats(1e-12, 1e12))
    def test_quantize_up_never_shrinks(self, v):
        assert dequantize(quantize_up(v)) >= v * (1 - 1e-9)

    @given(st.floats(1e-6, 1e6))
    def test_quantize_within_one_step(self, v):
        assert dequantize(quantize_up(v)) <= v * GRID_BASE * (1 + 1e-9)

    def test_rejects_nonpositive(self):
        with pytest.raises(Exception):
            quantize_up(0.0)


class TestEstimator:
    def test_missing_components_give_zero(self):
        assert estimate_count({0: 1}, components=4) == 0.0
        assert estimate_count({}, components=4) == 0.0

    def test_single_component_gives_zero(self):
        assert estimate_count({0: 1}, components=1) == 0.0

    def test_merge_min_keeps_minimum(self):
        mins = {0: 5}
        assert merge_min(mins, 0, 3)
        assert not merge_min(mins, 0, 4)
        assert mins[0] == 3
        assert merge_min(mins, 1, 7)

    def test_estimator_concentrates(self):
        # aggregate R-component minima over k simulated participants
        k, R = 50, 64
        coins = CoinSource(1)
        mins = {}
        for node in range(k):
            draws = draw_exponentials(coins.coins(node, 1), R)
            for c, j in draws.items():
                merge_min(mins, c, j)
        est = estimate_count(mins, R)
        assert 0.6 * k < est < 1.4 * k

    def test_partial_aggregation_undercounts(self):
        # seeing only half the participants can only lower the estimate
        k, R = 40, 64
        coins = CoinSource(2)
        all_mins, half_mins = {}, {}
        for node in range(k):
            draws = draw_exponentials(coins.coins(node, 1), R)
            for c, j in draws.items():
                merge_min(all_mins, c, j)
                if node < k // 2:
                    merge_min(half_mins, c, j)
        assert estimate_count(half_mins, R) <= estimate_count(all_mins, R)


class TestMajorityThreshold:
    @given(st.floats(0.01, 1 / 3), st.integers(10, 10**6))
    def test_threshold_algebra(self, c, n):
        # for any N' with |N' - N|/N <= 1/3 - c: N/2 < tau < N
        for err in (-(1 / 3 - c), 0.0, (1 / 3 - c)):
            n_prime = (1 + err) * n
            tau = majority_threshold(n_prime)
            assert tau > n / 2
            assert tau < n * (1 + 1e-9)

    def test_boundary_degenerates(self):
        # at err = +1/3 exactly, tau reaches N: the full count can no
        # longer clear it (given any undercount at all)
        n = 99
        tau = majority_threshold((1 + 1 / 3) * n)
        assert tau == pytest.approx(n)

    def test_default_components_floor(self):
        assert default_components(4) == 32
        assert default_components(2**20) == 80


class TestCountNodesProtocol:
    @pytest.mark.parametrize("n", [12, 24])
    def test_estimates_within_one_third(self, n):
        ids = list(range(1, n + 1))
        adv = OverlappingStarsAdversary(ids)
        budget = count_rounds_budget(2, n)
        nodes = {u: CountNodesNode(u, total_rounds=budget) for u in ids}
        eng = SynchronousEngine(nodes, adv, CoinSource(8))
        trace = eng.run(budget + 2)
        assert trace.termination_round is not None
        for u in ids:
            assert abs(nodes[u].estimate - n) / n < 1 / 3

    def test_all_nodes_agree_roughly(self):
        n = 16
        ids = list(range(1, n + 1))
        adv = OverlappingStarsAdversary(ids)
        budget = count_rounds_budget(2, n)
        nodes = {u: CountNodesNode(u, total_rounds=budget) for u in ids}
        SynchronousEngine(nodes, adv, CoinSource(9)).run(budget + 2)
        ests = [nodes[u].estimate for u in ids]
        assert max(ests) - min(ests) < 0.2 * n
