"""Branch-coverage tests for the two-party protocols."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.cc.disjointness import DisjointnessInstance, allowed_pairs
from repro.cc.protocols import MinListProtocol
from repro.cc.twoparty import run_two_party

from ..conftest import disjointness_instances


def _instance_with_zero_sets(n_zero_x: int, n_zero_y: int, q: int = 5):
    """An instance where Alice has ``n_zero_x`` zeros and Bob ``n_zero_y``.

    Alice-zero coordinates use (0, 1); Bob-zero coordinates use (1, 0);
    filler uses (q-1, q-1) so the answer is 1.
    """
    pairs = [(0, 1)] * n_zero_x + [(1, 0)] * n_zero_y + [(q - 1, q - 1)] * 3
    return DisjointnessInstance(
        tuple(p[0] for p in pairs), tuple(p[1] for p in pairs), q
    )


class TestMinListBranches:
    def test_bob_lists_when_smaller(self):
        inst = _instance_with_zero_sets(n_zero_x=5, n_zero_y=1)
        a = MinListProtocol("alice", inst.x, inst.n, inst.q)
        b = MinListProtocol("bob", inst.y, inst.n, inst.q)
        res = run_two_party(a, b, seed=1)
        assert res.answer == 1
        assert res.turns == 3  # count -> bob lists -> alice answers

    def test_alice_lists_when_smaller(self):
        inst = _instance_with_zero_sets(n_zero_x=1, n_zero_y=5)
        a = MinListProtocol("alice", inst.x, inst.n, inst.q)
        b = MinListProtocol("bob", inst.y, inst.n, inst.q)
        res = run_two_party(a, b, seed=1)
        assert res.answer == 1
        assert res.turns == 4  # count -> list-please -> alice lists -> bob answers

    def test_empty_zero_sets(self):
        inst = _instance_with_zero_sets(n_zero_x=0, n_zero_y=0)
        a = MinListProtocol("alice", inst.x, inst.n, inst.q)
        b = MinListProtocol("bob", inst.y, inst.n, inst.q)
        assert run_two_party(a, b, seed=1).answer == 1

    @given(inst=disjointness_instances(min_n=1, max_n=20))
    def test_turn_count_bounded(self, inst):
        a = MinListProtocol("alice", inst.x, inst.n, inst.q)
        b = MinListProtocol("bob", inst.y, inst.n, inst.q)
        res = run_two_party(a, b, seed=1)
        assert res.turns <= 4
        assert res.answer == inst.evaluate()


class TestAllowedPairsStructure:
    @given(inst=disjointness_instances())
    def test_every_coordinate_is_an_allowed_pair(self, inst):
        pairs = set(allowed_pairs(inst.q))
        assert all(p in pairs for p in zip(inst.x, inst.y))

    def test_zero_zero_and_top_are_the_only_equal_pairs(self):
        for q in (3, 5, 9):
            equal = [p for p in allowed_pairs(q) if p[0] == p[1]]
            assert equal == [(0, 0), (q - 1, q - 1)]
