"""Tests for the two-party framework and reference protocols."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro._util import bit_size
from repro.cc.bounds import corollary2_bound_bits, theorem1_lower_bound_bits
from repro.cc.disjointness import random_instance
from repro.cc.protocols import (
    MinListProtocol,
    SamplingProtocol,
    SendAllProtocol,
    ZeroBitmaskProtocol,
)
from repro.cc.twoparty import Party, Transcript, run_two_party
from repro.errors import ProtocolError

from ..conftest import disjointness_instances


class TestTranscript:
    def test_bit_accounting(self):
        t = Transcript()
        t.record("alice", (1, 2))
        t.record("bob", True)
        assert t.total_bits == bit_size((1, 2)) + bit_size(True)
        assert t.bits_from("alice") == bit_size((1, 2))
        assert len(t) == 2


class TestDriver:
    def test_role_validated(self):
        with pytest.raises(ProtocolError):
            SendAllProtocol("carol", (0,), 1, 3)

    def test_no_answer_raises(self):
        class Mute(Party):
            def turn(self, incoming, rng):
                return None, None

        with pytest.raises(ProtocolError):
            run_two_party(Mute("alice"), Mute("bob"), seed=1, max_turns=5)


EXACT_PROTOCOLS = [SendAllProtocol, ZeroBitmaskProtocol, MinListProtocol]


class TestExactProtocols:
    @pytest.mark.parametrize("proto", EXACT_PROTOCOLS)
    @given(inst=disjointness_instances(max_n=12))
    def test_always_correct(self, proto, inst):
        alice = proto("alice", inst.x, inst.n, inst.q)
        bob = proto("bob", inst.y, inst.n, inst.q)
        res = run_two_party(alice, bob, seed=1)
        assert res.answer == inst.evaluate()

    def test_bitmask_is_linear(self):
        for n in (32, 64, 128):
            inst = random_instance(n, 5, seed=1, value=1)
            a = ZeroBitmaskProtocol("alice", inst.x, n, 5)
            b = ZeroBitmaskProtocol("bob", inst.y, n, 5)
            res = run_two_party(a, b, seed=1)
            assert res.total_bits <= 4 * n + 16

    def test_minlist_beats_sendall_on_sparse(self):
        inst = random_instance(512, 9, seed=2, zero_zero_count=1)
        bits = {}
        for proto in (SendAllProtocol, MinListProtocol):
            a = proto("alice", inst.x, inst.n, inst.q)
            b = proto("bob", inst.y, inst.n, inst.q)
            bits[proto.__name__] = run_two_party(a, b, seed=1).total_bits
        assert bits["MinListProtocol"] < bits["SendAllProtocol"]


class TestSampling:
    def test_one_sided_zero_answers(self):
        # answer 0 claims are always genuine hits
        inst = random_instance(64, 5, seed=3, zero_zero_count=32)
        a, b = SamplingProtocol.build_pair(inst.x, inst.y, 64, 5, seed=9, samples=32)
        res = run_two_party(a, b, seed=1)
        if res.answer == 0:
            assert inst.evaluate() == 0

    def test_never_claims_zero_on_answer_one(self):
        inst = random_instance(64, 5, seed=4, value=1)
        a, b = SamplingProtocol.build_pair(inst.x, inst.y, 64, 5, seed=9, samples=32)
        res = run_two_party(a, b, seed=1)
        assert res.answer == 1

    def test_misses_rare_witness_sometimes(self):
        # with 4 samples over 256 coordinates and a single witness, the
        # protocol errs for at least one seed — sampling cannot be exact
        inst = random_instance(256, 5, seed=5, zero_zero_count=1)
        answers = set()
        for seed in range(12):
            a, b = SamplingProtocol.build_pair(inst.x, inst.y, 256, 5, seed=seed, samples=4)
            answers.add(run_two_party(a, b, seed=1).answer)
        assert 1 in answers


class TestBounds:
    def test_formula_values(self):
        assert theorem1_lower_bound_bits(10**6, 101) > 0
        assert theorem1_lower_bound_bits(100, 99) == 0.0  # floored at 0

    def test_corollary_matches_theorem(self):
        assert corollary2_bound_bits(10**5, 31) == theorem1_lower_bound_bits(10**5, 31)

    @given(st.integers(10, 10**6), st.integers(1, 50))
    def test_nonnegative(self, n, t):
        q = 2 * t + 1
        assert theorem1_lower_bound_bits(n, q) >= 0.0

    def test_monotone_in_n(self):
        assert theorem1_lower_bound_bits(10**6, 11) > theorem1_lower_bound_bits(10**4, 11)

    def test_decreasing_in_q(self):
        assert theorem1_lower_bound_bits(10**6, 11) > theorem1_lower_bound_bits(10**6, 101)
