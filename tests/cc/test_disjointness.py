"""Tests for DISJOINTNESSCP and the cycle promise."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cc.disjointness import (
    DisjointnessInstance,
    allowed_pairs,
    cycle_of_pairs,
    random_instance,
    satisfies_cycle_promise,
)
from repro.errors import PromiseViolation

from ..conftest import disjointness_instances, odd_q


class TestPromise:
    def test_allowed_pairs_count(self):
        for q in (3, 5, 7, 11):
            assert len(allowed_pairs(q)) == 2 * q

    def test_promise_examples(self):
        assert satisfies_cycle_promise((0, 3), (1, 2), 5)
        assert satisfies_cycle_promise((0,), (0,), 5)
        assert satisfies_cycle_promise((4,), (4,), 5)

    def test_promise_rejections(self):
        assert not satisfies_cycle_promise((2,), (2,), 5)  # equal interior
        assert not satisfies_cycle_promise((0,), (2,), 5)  # gap of 2
        assert not satisfies_cycle_promise((0,), (5,), 5)  # out of range
        assert not satisfies_cycle_promise((0, 1), (1,), 5)  # length mismatch

    def test_instance_validation(self):
        with pytest.raises(PromiseViolation):
            DisjointnessInstance((2,), (2,), 5)
        with pytest.raises(PromiseViolation):
            DisjointnessInstance((0, 1), (1,), 5)
        with pytest.raises(PromiseViolation):
            DisjointnessInstance((9,), (8,), 5)


class TestCycleStructure:
    @given(odd_q(3, 15))
    def test_cycle_visits_all_pairs_once(self, q):
        cyc = cycle_of_pairs(q)
        assert len(cyc) == 2 * q
        assert set(cyc) == set(allowed_pairs(q))

    @given(odd_q(3, 15))
    def test_consecutive_pairs_indistinguishable_to_one_party(self, q):
        cyc = cycle_of_pairs(q)
        for a, b in zip(cyc, cyc[1:] + cyc[:1]):
            assert a[0] == b[0] or a[1] == b[1]

    @given(odd_q(3, 15))
    def test_special_pairs_antipodal(self, q):
        cyc = cycle_of_pairs(q)
        i = cyc.index((0, 0))
        j = cyc.index((q - 1, q - 1))
        assert abs(i - j) == q  # antipodal on a 2q-cycle


class TestEvaluate:
    def test_figure1_instance(self):
        inst = DisjointnessInstance.from_strings("3110", "2200", 5)
        assert inst.evaluate() == 0
        assert inst.zero_zero_coordinates() == (3,)

    def test_answer_one(self):
        inst = DisjointnessInstance((1, 4), (2, 4), 5)
        assert inst.evaluate() == 1
        assert inst.zero_zero_coordinates() == ()

    @given(disjointness_instances())
    def test_evaluate_matches_definition(self, inst):
        expected = 0 if any(a == 0 and b == 0 for a, b in zip(inst.x, inst.y)) else 1
        assert inst.evaluate() == expected


class TestRandomInstances:
    @given(st.integers(1, 50), odd_q(3, 13), st.integers(0, 1000))
    def test_random_satisfies_promise(self, n, q, seed):
        inst = random_instance(n, q, seed)
        assert satisfies_cycle_promise(inst.x, inst.y, q)

    @given(st.integers(1, 50), odd_q(3, 13), st.integers(0, 100))
    def test_forced_values(self, n, q, seed):
        assert random_instance(n, q, seed, value=0).evaluate() == 0
        assert random_instance(n, q, seed, value=1).evaluate() == 1

    @given(st.integers(2, 30), odd_q(3, 9), st.integers(0, 100))
    def test_exact_zero_zero_count(self, n, q, seed):
        k = seed % (n + 1)
        inst = random_instance(n, q, seed, zero_zero_count=k)
        assert len(inst.zero_zero_coordinates()) == k

    def test_deterministic_in_seed(self):
        a = random_instance(20, 7, seed=5)
        b = random_instance(20, 7, seed=5)
        assert (a.x, a.y) == (b.x, b.y)

    def test_inconsistent_constraints_rejected(self):
        with pytest.raises(Exception):
            random_instance(5, 5, seed=1, value=1, zero_zero_count=2)
