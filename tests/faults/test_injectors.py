"""Tests for the wrapper injectors and fault-event observability."""

from __future__ import annotations

import json

import pytest

from repro.errors import (
    BandwidthExceeded,
    DisconnectedTopology,
    InvalidAction,
    ModelViolation,
)
from repro.faults import FaultPlan, FaultRecorder, FaultSpec, wire_engine_faults
from repro.faults.injectors import CORRUPT_PAYLOAD, FaultyCoinSource, FaultyNode
from repro.network.adversaries import RandomConnectedAdversary
from repro.obs.runtime import observe
from repro.protocols.flooding import GossipMaxNode
from repro.sim.coins import CoinSource
from repro.sim.engine import SynchronousEngine

N = 6
SEED = 404


def _engine(plan, recorder):
    nodes = {u: GossipMaxNode(u) for u in range(N)}
    adversary = RandomConnectedAdversary(range(N), seed=3)
    coins = CoinSource(SEED)
    nodes, adversary, coins = wire_engine_faults(nodes, adversary, coins, plan, recorder)
    return SynchronousEngine(nodes, adversary, coins)


class TestWiring:
    def test_none_plan_returns_original_objects(self):
        nodes = {u: GossipMaxNode(u) for u in range(N)}
        adversary = RandomConnectedAdversary(range(N), seed=3)
        coins = CoinSource(SEED)
        w_nodes, w_adv, w_coins = wire_engine_faults(
            nodes, adversary, coins, None, FaultRecorder()
        )
        assert w_nodes is nodes and w_adv is adversary and w_coins is coins

    def test_empty_plan_returns_original_objects(self):
        nodes = {u: GossipMaxNode(u) for u in range(N)}
        adversary = RandomConnectedAdversary(range(N), seed=3)
        coins = CoinSource(SEED)
        w_nodes, w_adv, w_coins = wire_engine_faults(
            nodes, adversary, coins, FaultPlan(seed=SEED), FaultRecorder()
        )
        assert w_nodes is nodes and w_adv is adversary and w_coins is coins

    def test_only_targeted_nodes_are_wrapped(self):
        recorder = FaultRecorder()
        plan = FaultPlan.single(
            SEED, FaultSpec("message-drop", "engine", round=2, target=1)
        )
        nodes = {u: GossipMaxNode(u) for u in range(N)}
        adversary = RandomConnectedAdversary(range(N), seed=3)
        coins = CoinSource(SEED)
        w_nodes, w_adv, w_coins = wire_engine_faults(nodes, adversary, coins, plan, recorder)
        assert isinstance(w_nodes[1], FaultyNode) and w_nodes[1].inner is nodes[1]
        assert all(w_nodes[u] is nodes[u] for u in range(N) if u != 1)
        assert w_adv is adversary and w_coins is coins

    def test_faulty_coin_source_reports_honest_seed(self):
        recorder = FaultRecorder()
        spec = FaultSpec("coin-tamper", "engine", round=1, target=0)
        wrapped = FaultyCoinSource(CoinSource(SEED), [spec], recorder)
        assert wrapped.seed == SEED  # RunManifest.from_engine reads this
        # the untargeted stream is untouched
        assert wrapped.coins(1, 1).bit(0.5) == CoinSource(SEED).coins(1, 1).bit(0.5)


class TestEngineInjections:
    def test_over_budget_raises_bandwidth_exceeded(self):
        recorder = FaultRecorder()
        plan = FaultPlan.single(
            SEED, FaultSpec("over-budget", "engine", round=2, target=1, params={"bits": 2048})
        )
        with pytest.raises(BandwidthExceeded) as err:
            _engine(plan, recorder).run(10)
        assert err.value.sender == 1 and err.value.round == 2
        assert len(recorder.events) == 1

    def test_invalid_action_raises(self):
        recorder = FaultRecorder()
        plan = FaultPlan.single(SEED, FaultSpec("invalid-action", "engine", round=2, target=1))
        with pytest.raises(InvalidAction):
            _engine(plan, recorder).run(10)
        assert len(recorder.events) == 1

    def test_disconnect_raises(self):
        recorder = FaultRecorder()
        plan = FaultPlan.single(SEED, FaultSpec("disconnect", "adversary", round=3, target=2))
        with pytest.raises(DisconnectedTopology):
            _engine(plan, recorder).run(10)
        assert len(recorder.events) == 1

    def test_foreign_edge_raises_model_violation(self):
        recorder = FaultRecorder()
        plan = FaultPlan.single(SEED, FaultSpec("foreign-edge", "adversary", round=3, target=2))
        with pytest.raises(ModelViolation, match="leaves the node set"):
            _engine(plan, recorder).run(10)
        assert len(recorder.events) == 1

    def test_corrupt_payload_is_recognizable(self):
        # the sentinel must dominate honest gossip values so corruption
        # visibly changes downstream state
        assert CORRUPT_PAYLOAD[1] > 10**5


class TestFaultObservability:
    def test_injections_persist_as_faults_jsonl(self, tmp_path):
        recorder = FaultRecorder()
        plan = FaultPlan.single(
            SEED, FaultSpec("over-budget", "engine", round=2, target=1, params={"bits": 2048})
        )
        trace_dir = tmp_path / "session"
        with observe(trace_dir=trace_dir) as session:
            with pytest.raises(BandwidthExceeded):
                _engine(plan, recorder).run(10)
        assert session.faults == recorder.events
        lines = [
            json.loads(l)
            for l in (trace_dir / "faults.jsonl").read_text().splitlines()
        ]
        assert len(lines) == 1
        assert lines[0]["fault"] == "over-budget"
        assert lines[0]["expect"] == "BandwidthExceeded"
        assert lines[0]["round"] == 2 and lines[0]["target"] == 1

    def test_no_faults_means_no_faults_jsonl(self, tmp_path):
        trace_dir = tmp_path / "clean"
        with observe(trace_dir=trace_dir):
            _engine(None, FaultRecorder()).run(5)
        assert not (trace_dir / "faults.jsonl").exists()

    def test_recorder_events_for(self):
        recorder = FaultRecorder()
        spec = FaultSpec("disconnect", "adversary", round=3, target=2)
        recorder.record(spec, "adversary", "isolated node 2")
        assert recorder.events_for("disconnect") == recorder.events
        assert recorder.events_for("coin-tamper") == []
