"""Tests for the fault taxonomy and FaultPlan serialization."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.faults import APPLICABILITY, FAULT_CLASSES, LAYERS, FaultPlan, FaultSpec
from repro.faults.plan import PLAN_FORMAT_VERSION


class TestTaxonomy:
    def test_applicability_covers_every_fault_class(self):
        assert set(APPLICABILITY) == set(FAULT_CLASSES)

    def test_applicability_layers_are_known(self):
        for fault, layers in APPLICABILITY.items():
            assert set(layers) <= set(LAYERS), fault

    def test_every_cell_names_a_detector(self):
        for fault, layers in APPLICABILITY.items():
            for layer, expect in layers.items():
                assert expect, (fault, layer)

    def test_unknown_fault_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault class"):
            FaultSpec("cosmic-ray", "engine")

    def test_unknown_layer_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown layer"):
            FaultSpec("message-drop", "kernel")

    def test_inapplicable_pair_rejected(self):
        # worker-crash cannot be injected into the engine layer
        with pytest.raises(ConfigurationError, match="does not apply"):
            FaultSpec("worker-crash", "engine")

    def test_expect_property(self):
        assert FaultSpec("over-budget", "engine").expect == "BandwidthExceeded"
        assert FaultSpec("message-drop", "engine").expect == "trace-divergence"
        assert (
            FaultSpec("adversary-perturb", "reduction").expect == "SimulationDiverged"
        )

    def test_param_default(self):
        spec = FaultSpec("over-budget", "engine", params={"bits": 128})
        assert spec.param("bits") == 128
        assert spec.param("missing", 7) == 7


class TestPlanRoundTrip:
    def _plan(self) -> FaultPlan:
        return FaultPlan(
            seed=99,
            specs=[
                FaultSpec("over-budget", "engine", round=3, target=2, params={"bits": 64}),
                FaultSpec("disconnect", "adversary", round=4, target=1),
                FaultSpec("message-drop", "reduction", round=2, params={"party": "bob"}),
            ],
        )

    def test_jsonl_round_trip(self, tmp_path):
        plan = self._plan()
        path = plan.to_jsonl(tmp_path / "plan.jsonl")
        loaded = FaultPlan.from_jsonl(path)
        assert loaded == plan
        assert loaded.seed == 99 and len(loaded) == 3

    def test_header_carries_version_and_count(self, tmp_path):
        path = self._plan().to_jsonl(tmp_path / "plan.jsonl")
        head = json.loads(path.read_text().splitlines()[0])
        assert head["type"] == "fault-plan"
        assert head["format_version"] == PLAN_FORMAT_VERSION
        assert head["num_specs"] == 3

    def test_specs_serialize_their_expected_detector(self, tmp_path):
        path = self._plan().to_jsonl(tmp_path / "plan.jsonl")
        lines = [json.loads(l) for l in path.read_text().splitlines()[1:]]
        assert [l["expect"] for l in lines] == [
            "BandwidthExceeded",
            "DisconnectedTopology",
            "reference-divergence",
        ]

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "plan.jsonl"
        path.write_text('{"type": "fault", "fault": "disconnect", "layer": "adversary"}\n')
        with pytest.raises(ConfigurationError, match="no fault-plan header"):
            FaultPlan.from_jsonl(path)

    def test_unknown_line_type_rejected(self, tmp_path):
        path = tmp_path / "plan.jsonl"
        path.write_text('{"type": "surprise"}\n')
        with pytest.raises(ConfigurationError, match="unknown line type"):
            FaultPlan.from_jsonl(path)

    def test_newer_version_rejected(self, tmp_path):
        path = tmp_path / "plan.jsonl"
        path.write_text(
            json.dumps(
                {
                    "type": "fault-plan",
                    "format_version": PLAN_FORMAT_VERSION + 1,
                    "seed": 0,
                    "num_specs": 0,
                }
            )
            + "\n"
        )
        with pytest.raises(ConfigurationError, match="newer than supported"):
            FaultPlan.from_jsonl(path)

    def test_truncated_plan_rejected(self, tmp_path):
        plan = self._plan()
        path = plan.to_jsonl(tmp_path / "plan.jsonl")
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")  # drop the last spec
        with pytest.raises(ConfigurationError, match="truncated"):
            FaultPlan.from_jsonl(path)


class TestPlanQueries:
    def test_empty_plan_is_inactive(self):
        assert not FaultPlan(seed=1).active

    def test_specs_for_layer(self):
        plan = FaultPlan(
            seed=1,
            specs=[
                FaultSpec("disconnect", "adversary", round=2),
                FaultSpec("over-budget", "engine", round=3, target=0),
            ],
        )
        assert [s.fault for s in plan.specs_for("adversary")] == ["disconnect"]
        assert [s.fault for s in plan.specs_for("engine")] == ["over-budget"]
        assert plan.specs_for("worker") == []

    def test_specs_for_unknown_layer_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown layer"):
            FaultPlan(seed=1).specs_for("kernel")

    def test_single_and_add(self):
        spec = FaultSpec("disconnect", "adversary", round=2)
        plan = FaultPlan.single(5, spec)
        assert list(plan) == [spec]
        plan.add(FaultSpec("foreign-edge", "adversary", round=3))
        assert len(plan) == 2
