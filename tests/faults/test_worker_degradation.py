"""Worker-level faults: crash/hang degradation in ParallelExecutor.

The PR-3 contract (tests/sim/test_parallel.py) still holds: ordinary
task exceptions re-raise immediately with the task's label and are never
retried.  These tests cover the degradation extension — a worker process
dying or hanging is absorbed by ``retries`` on a rebuilt pool, and when
retries are exhausted the failure surfaces as
:class:`~repro.errors.ParallelExecutionError` naming the task's label,
never a bare ``BrokenProcessPool``.
"""

from __future__ import annotations

import os
import signal

import pytest

from repro.errors import ConfigurationError, ParallelExecutionError
from repro.faults.injectors import crashy_task, hangy_task
from repro.sim.parallel import ParallelExecutor


def always_crash(value: int) -> int:
    os.kill(os.getpid(), signal.SIGKILL)
    return value  # pragma: no cover - never reached


def always_raise(value: int) -> int:
    raise RuntimeError(f"deterministic failure for {value}")


def square(value: int) -> int:
    return value * value


@pytest.fixture
def marker(tmp_path):
    path = tmp_path / "fault.marker"
    path.write_text("armed\n")
    return path


class TestCrashDegradation:
    def test_one_crash_is_absorbed_by_a_retry(self, marker):
        executor = ParallelExecutor(workers=2, retries=1)
        results = executor.map(
            crashy_task,
            [(str(marker), i) for i in range(4)],
            labels=[f"seed={i}" for i in range(4)],
        )
        assert results == [0, 1, 4, 9]
        assert len(executor.degradations) == 1
        d = executor.degradations[0]
        assert d["kind"] == "crash" and d["attempt"] == 1
        assert d["label"].startswith("seed=")

    def test_crash_without_retries_names_the_label(self, marker):
        executor = ParallelExecutor(workers=2, retries=0)
        with pytest.raises(ParallelExecutionError) as err:
            executor.map(
                crashy_task,
                [(str(marker), i) for i in range(2)],
                labels=["seed=0", "seed=1"],
            )
        assert "seed=" in str(err.value)

    def test_retries_exhausted_surfaces_with_label(self):
        executor = ParallelExecutor(workers=2, retries=1)
        with pytest.raises(ParallelExecutionError) as err:
            executor.map(always_crash, [(1,), (2,)], labels=["cell=a", "cell=b"])
        message = str(err.value)
        assert "retries exhausted" in message
        assert "cell=" in message
        assert "BrokenProcessPool" not in message


class TestHangDegradation:
    def test_one_hang_is_absorbed_by_a_retry(self, marker):
        executor = ParallelExecutor(workers=2, retries=1, task_timeout=3.0)
        results = executor.map(
            hangy_task,
            [(str(marker), i, 600.0) for i in range(4)],
            labels=[f"seed={i}" for i in range(4)],
        )
        assert results == [0, 1, 4, 9]
        assert len(executor.degradations) == 1
        assert executor.degradations[0]["kind"] == "hang"

    def test_hang_without_retries_surfaces_with_label(self, marker):
        executor = ParallelExecutor(workers=2, retries=0, task_timeout=2.0)
        with pytest.raises(ParallelExecutionError) as err:
            executor.map(
                hangy_task,
                [(str(marker), i, 600.0) for i in range(2)],
                labels=["seed=0", "seed=1"],
            )
        message = str(err.value)
        assert "task_timeout" in message and "seed=" in message


class TestDegradedPathContracts:
    def test_ordinary_exception_is_never_retried(self):
        # retries apply to worker-level faults only; a deterministic
        # task exception re-raises immediately with its label (PR-3).
        executor = ParallelExecutor(workers=2, retries=3, task_timeout=30.0)
        with pytest.raises(RuntimeError) as err:
            executor.map(always_raise, [(7,)], labels=["seed=7"])
        assert "seed=7" in str(err.value)
        assert executor.degradations == []

    def test_degraded_path_preserves_results_and_order(self):
        executor = ParallelExecutor(workers=2, retries=1, task_timeout=30.0)
        results = executor.map(square, [(i,) for i in range(6)])
        assert results == [i * i for i in range(6)]
        assert executor.degradations == []

    def test_clean_run_matches_fast_path(self):
        fast = ParallelExecutor(workers=2).map(square, [(i,) for i in range(5)])
        degraded = ParallelExecutor(workers=2, retries=2, task_timeout=60.0).map(
            square, [(i,) for i in range(5)]
        )
        assert fast == degraded == [i * i for i in range(5)]

    def test_invalid_retries_rejected(self):
        with pytest.raises(ConfigurationError):
            ParallelExecutor(workers=2, retries=-1)

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ConfigurationError):
            ParallelExecutor(workers=2, task_timeout=0)

    def test_inline_mode_ignores_degradation_options(self):
        executor = ParallelExecutor(workers=0, retries=2, task_timeout=1.0)
        assert executor.map(square, [(3,)]) == [9]
        assert executor.degradations == []
