"""The zero-cost property: no planned faults, bit-identical execution.

The acceptance contract of the fault layer is that *disabling* it is
free: wiring an engine through :func:`wire_engine_faults` with an empty
(or absent) plan must return the very same objects, produce a
byte-identical :class:`~repro.sim.trace.ExecutionTrace`, and leave the
observability metrics indistinguishable from the unwrapped path.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultPlan, FaultRecorder, trace_fingerprint, wire_engine_faults
from repro.faults.injectors import inject_reduction_faults
from repro.network.adversaries import RandomConnectedAdversary
from repro.obs.runtime import observe
from repro.protocols.flooding import GossipMaxNode
from repro.sim.coins import CoinSource
from repro.sim.engine import SynchronousEngine


def _run(seed: int, n: int, rounds: int, wire: bool):
    """One seeded gossip run; returns (fingerprint, metrics snapshot)."""
    nodes = {u: GossipMaxNode(u) for u in range(n)}
    adversary = RandomConnectedAdversary(range(n), seed=seed + 1)
    coins = CoinSource(seed)
    if wire:
        nodes, adversary, coins = wire_engine_faults(
            nodes, adversary, coins, FaultPlan(seed=seed), FaultRecorder()
        )
    with observe() as session:
        trace = SynchronousEngine(nodes, adversary, coins).run(rounds)
    return trace_fingerprint(trace), session.manifest.metrics


def _comparable(metrics: dict) -> dict:
    """Metrics minus wall-clock noise: counter/gauge values, histogram counts."""
    out = {}
    for key, metric in metrics.items():
        if metric.get("type") in ("counter", "gauge"):
            out[key] = (metric["type"], metric["value"])
        elif metric.get("type") == "histogram":
            out[key] = ("histogram", metric["count"])
    return out


@given(
    seed=st.integers(0, 2**32 - 1),
    # n >= 4 keeps the CONGEST budget above the gossip payload size, so
    # the honest scenario itself never trips the bandwidth check
    n=st.integers(4, 8),
    rounds=st.integers(1, 25),
)
@settings(max_examples=25)
def test_empty_plan_is_bit_identical(seed, n, rounds):
    plain_fp, plain_metrics = _run(seed, n, rounds, wire=False)
    wired_fp, wired_metrics = _run(seed, n, rounds, wire=True)
    assert wired_fp == plain_fp
    assert _comparable(wired_metrics) == _comparable(plain_metrics)


@given(seed=st.integers(0, 2**32 - 1))
@settings(max_examples=10)
def test_empty_plan_returns_identical_objects(seed):
    nodes = {u: GossipMaxNode(u) for u in range(4)}
    adversary = RandomConnectedAdversary(range(4), seed=1)
    coins = CoinSource(seed)
    for plan in (None, FaultPlan(seed=seed)):
        w_nodes, w_adv, w_coins = wire_engine_faults(
            nodes, adversary, coins, plan, FaultRecorder()
        )
        assert w_nodes is nodes
        assert w_adv is adversary
        assert w_coins is coins


def test_empty_plan_leaves_reduction_untouched():
    from repro.cc.disjointness import random_instance
    from repro.core.simulation import TwoPartyReduction

    inst = random_instance(2, 5, seed=1)
    red = TwoPartyReduction(inst, "T6", GossipMaxNode, seed=1)
    for plan in (None, FaultPlan(seed=1)):
        out = inject_reduction_faults(red, plan, FaultRecorder())
        assert out is red
        # injection patches instance attributes over the class methods;
        # untouched parties must carry no such patches
        for party in (red.alice, red.bob):
            assert "step_actions" not in vars(party)
            assert "edge_set" not in vars(party)
            assert "coin_source" in vars(party)  # the honest source stays
