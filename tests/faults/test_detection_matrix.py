"""The headline CI gate: 100% detection, one injection per detection.

Runs the full mutation-style matrix — every applicable (fault class,
layer) cell of the taxonomy — and requires every cell to report its
expected detector firing on exactly one applied injection.  A cell
regressing here means a model violation the paper's machinery claims to
catch would now slip through silently.
"""

from __future__ import annotations

import pytest

from repro.faults import APPLICABILITY, matrix_result, run_detection_matrix


@pytest.fixture(scope="module")
def matrix(tmp_path_factory):
    work_dir = tmp_path_factory.mktemp("faultcheck")
    return run_detection_matrix(work_dir=work_dir)


class TestDetectionMatrix:
    def test_every_cell_detected(self, matrix):
        undetected = [r for r in matrix if not r.detected]
        assert not undetected, "\n".join(
            f"{r.fault}/{r.layer} expected {r.expect}: {r.detail}" for r in undetected
        )

    def test_one_to_one_injected_vs_detected(self, matrix):
        for record in matrix:
            assert record.injected == 1, (
                f"{record.fault}/{record.layer}: {record.injected} injections "
                f"recorded, expected exactly 1 ({record.detail})"
            )
            assert record.one_to_one

    def test_every_applicability_cell_is_exercised(self, matrix):
        covered = {(r.fault, r.layer) for r in matrix}
        expected = {
            (fault, layer)
            for fault, layers in APPLICABILITY.items()
            for layer in layers
        }
        assert covered == expected

    def test_exception_cells_name_the_exact_class(self, matrix):
        for record in matrix:
            if record.expect in (
                "BandwidthExceeded",
                "InvalidAction",
                "DisconnectedTopology",
                "ModelViolation",
            ):
                assert record.detail.startswith(record.expect + ":"), record.detail

    def test_perturb_cell_requires_the_audit_finding_too(self, matrix):
        (cell,) = [
            r for r in matrix
            if r.fault == "adversary-perturb" and r.layer == "reduction"
        ]
        assert "SimulationDiverged" in cell.detail
        assert "audit" in cell.detail

    def test_perturb_cell_covers_the_adaptive_batch_path(self, matrix):
        (cell,) = [
            r for r in matrix
            if r.fault == "adversary-perturb" and r.layer == "adversary"
        ]
        assert cell.expect == "trace-divergence"
        assert "backend=batch" in cell.detail
        assert cell.one_to_one

    def test_summary_is_the_ci_contract(self, matrix):
        summary = matrix_result(matrix).summary
        assert summary["detection_rate"] == 1.0
        assert summary["one_to_one"] is True
        assert summary["applicability_covered"] is True
        assert summary["cells"] == len(matrix) == 14


class TestFaultcheckCli:
    def test_faultcheck_exits_zero_and_writes_sidecar(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "EXP-FI.json"
        assert main(["faultcheck", "--out", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "EXP-FI" in stdout and "detection matrix" in stdout
        import json

        data = json.loads(out.read_text())
        assert data["summary"]["detection_rate"] == 1.0
        assert data["summary"]["one_to_one"] is True
        assert len(data["rows"]) == 14

    def test_out_flag_rejected_elsewhere(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["fig1", "--out", "x.json"])

    def test_faultcheck_rejects_positional_paths(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["faultcheck", "some/dir"])
