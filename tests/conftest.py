"""Shared fixtures, markers, and hypothesis strategies for the test suite."""

from __future__ import annotations

import os
import pathlib

import pytest
from hypothesis import HealthCheck, settings
from hypothesis import strategies as st

from repro.cc.disjointness import DisjointnessInstance, allowed_pairs

# Hypothesis profiles (select with HYPOTHESIS_PROFILE, default "repro"):
#   repro    local development — fast, random exploration
#   ci       pull requests — derandomized, so a red PR is reproducibly red
#   ci-main  pushes to main — derandomized but wider (more examples)
_COMMON = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])
settings.register_profile("repro", max_examples=40, **_COMMON)
settings.register_profile("ci", max_examples=40, derandomize=True, **_COMMON)
settings.register_profile("ci-main", max_examples=120, derandomize=True, **_COMMON)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "repro"))

_TESTS_DIR = pathlib.Path(__file__).parent
_FAULTS_DIR = _TESTS_DIR / "faults"


def pytest_collection_modifyitems(config, items):
    """Auto-apply the tier markers (see pyproject ``[tool.pytest.ini_options]``).

    Everything under ``tests/faults/`` is ``faults``; everything not
    explicitly ``slow`` is ``tier1`` — so ``-m tier1`` and
    ``-m "not slow"`` select the same fast PR gate, and ``-m faults``
    names the fault-injection subsystem alone.
    """
    for item in items:
        path = pathlib.Path(str(item.fspath))
        if _FAULTS_DIR in path.parents:
            item.add_marker(pytest.mark.faults)
        if "slow" not in item.keywords:
            item.add_marker(pytest.mark.tier1)


def odd_q(min_q: int = 3, max_q: int = 13):
    """Strategy: odd q in [min_q, max_q]."""
    return st.integers(min_q // 2, (max_q - 1) // 2).map(lambda t: 2 * t + 1)


@st.composite
def disjointness_instances(draw, min_n=1, max_n=6, min_q=3, max_q=11, value=None):
    """Strategy: promise-satisfying DISJOINTNESSCP instances."""
    q = draw(odd_q(min_q, max_q))
    n = draw(st.integers(min_n, max_n))
    pairs = allowed_pairs(q)
    non_zero = [p for p in pairs if p != (0, 0)]
    if value == 0:
        witness = draw(st.integers(0, n - 1))
        chosen = [
            (0, 0) if i == witness else draw(st.sampled_from(pairs))
            for i in range(n)
        ]
    elif value == 1:
        chosen = [draw(st.sampled_from(non_zero)) for _ in range(n)]
    else:
        chosen = [draw(st.sampled_from(pairs)) for _ in range(n)]
    x = tuple(p[0] for p in chosen)
    y = tuple(p[1] for p in chosen)
    return DisjointnessInstance(x, y, q)


@pytest.fixture
def fig1_instance() -> DisjointnessInstance:
    """The Figure-1 instance: n=4, q=5, x=3110, y=2200."""
    return DisjointnessInstance.from_strings("3110", "2200", 5)


@pytest.fixture
def small_ids():
    return list(range(1, 9))
