"""Every exception in ``repro.errors`` is reachable from library code.

A dead error path is a checker that can never fire.  ``TRIGGERS`` maps
each concrete exception class to a minimal scenario that provokes the
*library* (not the test) into raising it; the coverage test asserts the
map and ``repro.errors.__all__`` agree exactly, so adding an exception
without a raise site — or removing its last raise site — fails here.
"""

from __future__ import annotations

import pytest

import repro.errors as errors_module
from repro.errors import (
    BandwidthExceeded,
    ConfigurationError,
    DisconnectedTopology,
    InvalidAction,
    ModelViolation,
    ParallelExecutionError,
    PromiseViolation,
    ProtocolError,
    ReproError,
    SimulationDiverged,
)
from repro.faults import FaultPlan, FaultRecorder, FaultSpec, wire_engine_faults
from repro.network.adversaries import RandomConnectedAdversary
from repro.protocols.flooding import GossipMaxNode
from repro.sim.coins import CoinSource
from repro.sim.engine import SynchronousEngine


def _faulted_engine_run(spec: FaultSpec) -> None:
    n = 6
    nodes = {u: GossipMaxNode(u) for u in range(n)}
    adversary = RandomConnectedAdversary(range(n), seed=3)
    coins = CoinSource(11)
    nodes, adversary, coins = wire_engine_faults(
        nodes, adversary, coins, FaultPlan.single(11, spec), FaultRecorder()
    )
    SynchronousEngine(nodes, adversary, coins).run(10)


def _trigger_bandwidth_exceeded():
    _faulted_engine_run(
        FaultSpec("over-budget", "engine", round=2, target=1, params={"bits": 4096})
    )


def _trigger_invalid_action():
    _faulted_engine_run(FaultSpec("invalid-action", "engine", round=2, target=1))


def _trigger_disconnected_topology():
    _faulted_engine_run(FaultSpec("disconnect", "adversary", round=3, target=2))


def _trigger_model_violation():
    # the base class's own raise site: a foreign edge leaving the node set
    _faulted_engine_run(FaultSpec("foreign-edge", "adversary", round=3, target=2))


def _trigger_promise_violation():
    from repro.cc.disjointness import DisjointnessInstance

    DisjointnessInstance((0,), (2,), 5)  # (0, 2) violates the cycle promise


def _trigger_simulation_diverged():
    from repro.cc.disjointness import random_instance
    from repro.core.simulation import TwoPartyReduction
    from repro.faults.injectors import inject_reduction_faults

    inst = random_instance(3, 9, seed=1)
    horizon = (inst.q - 1) // 2
    for start in range(2, horizon + 1):
        red = TwoPartyReduction(inst, "T6", GossipMaxNode, seed=7)
        inject_reduction_faults(
            red,
            FaultPlan.single(
                7,
                FaultSpec(
                    "adversary-perturb", "reduction", round=start,
                    params={"party": "alice"},
                ),
            ),
            FaultRecorder(),
        )
        red.run()  # some shift start must trip the Lemma 3/4 bookkeeping


def _trigger_protocol_error():
    from repro.cc.twoparty import Party

    class Stub(Party):
        def turn(self, incoming, rng):  # pragma: no cover - never driven
            return None, None

    Stub(role="carol")


def _trigger_configuration_error():
    from repro.sim.parallel import resolve_workers

    resolve_workers(-1)


def _trigger_parallel_execution_error():
    # A worker exception whose class cannot be rebuilt from a message
    # alone (BandwidthExceeded's 4-argument constructor) degrades to
    # ParallelExecutionError naming the task label — no pool needed.
    from repro.sim.parallel import WorkerFailure

    failure = WorkerFailure(BandwidthExceeded(100, 24, 7, 3), label="seed=3")
    failure.reraise()


TRIGGERS = {
    BandwidthExceeded: _trigger_bandwidth_exceeded,
    InvalidAction: _trigger_invalid_action,
    DisconnectedTopology: _trigger_disconnected_topology,
    ModelViolation: _trigger_model_violation,
    PromiseViolation: _trigger_promise_violation,
    SimulationDiverged: _trigger_simulation_diverged,
    ProtocolError: _trigger_protocol_error,
    ConfigurationError: _trigger_configuration_error,
    ParallelExecutionError: _trigger_parallel_execution_error,
}


class TestNoDeadErrorPaths:
    def test_triggers_cover_public_hierarchy_exactly(self):
        # ReproError is the abstract base — covered via every subclass.
        named = {getattr(errors_module, name) for name in errors_module.__all__}
        assert set(TRIGGERS) | {ReproError} == named

    @pytest.mark.parametrize(
        "exc_class", sorted(TRIGGERS, key=lambda c: c.__name__), ids=lambda c: c.__name__
    )
    def test_library_raises(self, exc_class):
        with pytest.raises(exc_class) as err:
            TRIGGERS[exc_class]()
        assert isinstance(err.value, ReproError)
        assert str(err.value), "error messages must be non-empty"

    def test_model_violation_subclass_raised_as_itself(self):
        # the ModelViolation trigger must raise the *base* (foreign-edge
        # uses it directly), not via one of its subclasses
        with pytest.raises(ModelViolation) as err:
            _trigger_model_violation()
        assert type(err.value) is ModelViolation

    def test_parallel_error_carries_label_and_type(self):
        with pytest.raises(ParallelExecutionError) as err:
            _trigger_parallel_execution_error()
        assert "seed=3" in str(err.value)
        assert "BandwidthExceeded" in str(err.value)
