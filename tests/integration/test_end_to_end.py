"""Integration tests spanning the whole stack.

These compose the pieces the way the paper does: estimate N with the
known-D toolbox, feed the estimate into the diameter-oblivious leader
election; run the full reduction pipeline and confirm the
communication/time accounting; replay a reference execution through the
engine against the adaptive reference adversary.
"""

from __future__ import annotations

import pytest

from repro.cc.disjointness import random_instance
from repro.core.composition import theorem6_network
from repro.core.simulation import TwoPartyReduction, run_reference_execution
from repro.network.adversaries import OverlappingStarsAdversary
from repro.network.causality import dynamic_diameter
from repro.protocols.cflood import CFloodKnownDNode
from repro.protocols.flooding import GossipMaxNode
from repro.protocols.hearfrom import CountNodesNode, count_rounds_budget
from repro.protocols.leader_election import LeaderElectNode
from repro.sim.coins import CoinSource
from repro.sim.engine import SynchronousEngine


class TestEstimateThenElect:
    """The paper's punchline composition: with known D you can buy an N'
    in O(log N) flooding rounds, and that N' unlocks diameter-oblivious
    leader election — the unknown-D cost concentrates in estimation."""

    def test_pipeline(self):
        n = 14
        ids = list(range(1, n + 1))
        adv = OverlappingStarsAdversary(ids)
        d = 2

        # stage 1: estimate N with the known-D counting protocol
        budget = count_rounds_budget(d, n)
        counters = {u: CountNodesNode(u, total_rounds=budget) for u in ids}
        SynchronousEngine(counters, adv, CoinSource(3)).run(budget + 2)
        n_prime = counters[1].estimate
        assert abs(n_prime - n) / n < 1 / 3 - 0.05

        # stage 2: leader election with that estimate, D forgotten
        nodes = {u: LeaderElectNode(u, n_estimate=n_prime) for u in ids}
        trace = SynchronousEngine(nodes, adv, CoinSource(4)).run(40_000)
        assert trace.termination_round is not None
        assert {o[1] for o in trace.outputs.values()} == {n}


class TestReferenceEngineAgainstAdaptiveAdversary:
    def test_reference_execution_connected_and_faithful(self):
        inst = random_instance(3, 9, seed=2, value=0)
        ref = run_reference_execution(
            inst, "T6", lambda uid: GossipMaxNode(uid), seed=5, rounds=6
        )
        # the engine validated per-round connectivity while the adaptive
        # reference adversary reacted to committed actions
        assert ref.trace.rounds == 6
        assert ref.composition.num_nodes == len(ref.spies)
        # the realized schedule has the claimed answer-0 shape: the far
        # line node heard nothing (gossip cannot cross into the line)
        gamma = ref.composition.subnets[0]
        far = gamma.line_far_end()
        assert ref.spies[far].inner.best <= max(gamma.line_node_ids())

    def test_fast_oracle_end_to_end_on_real_network(self):
        # run the fast CFLOOD oracle on the real answer-0 network long
        # enough and confirm its premature output is a genuine error
        inst = random_instance(2, 17, seed=3, value=0)
        net = theorem6_network(inst)
        src = net.special_nodes()["A_gamma"]
        ref = run_reference_execution(
            inst, "T6",
            lambda uid: CFloodKnownDNode(uid, source=src, d_param=10),
            seed=1, rounds=10, stop_on_termination=False,
        )
        assert ref.spies[src].inner.output() is not None  # confirmed...
        uninformed = [u for u, spy in ref.spies.items() if not spy.inner.informed]
        assert uninformed  # ...while someone still lacks the token


class TestAccountingConsistency:
    def test_reduction_bits_scale_with_horizon(self):
        inst_small = random_instance(2, 9, seed=1, value=1)
        inst_large = random_instance(2, 25, seed=1, value=1)
        fac = lambda uid: GossipMaxNode(uid)
        small = TwoPartyReduction(inst_small, "T6", fac, seed=1).run()
        large = TwoPartyReduction(inst_large, "T6", fac, seed=1).run()
        assert large.total_bits > small.total_bits
        # per-round frame cost is O(log N): within 4x across these sizes
        ps = small.total_bits / small.rounds_simulated
        pl = large.total_bits / large.rounds_simulated
        assert pl < 4 * ps

    def test_engine_trace_diameter_matches_construction(self):
        inst = random_instance(2, 9, seed=4, value=1)
        ref = run_reference_execution(
            inst, "T6", lambda uid: GossipMaxNode(uid), seed=2, rounds=12
        )
        from repro.network.dynamic import DynamicSchedule
        from repro.network.topology import RoundTopology

        ids = ref.composition.node_ids
        sched = DynamicSchedule(
            [RoundTopology(ids, edges) for edges in ref.trace.edge_schedule()]
        )
        d = dynamic_diameter(sched, max_diameter=40, start_rounds=[0])
        assert d is not None and d <= 10
