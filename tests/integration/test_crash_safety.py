"""Crash safety: a SIGKILL'd streaming sweep leaves a loadable session.

The scenario the event stream exists for: a ``REPRO_WORKERS=2`` sweep
runs some cells to completion, then wedges on a hung worker (the fault
subsystem's ``hangy_task``) and is SIGKILL'd — no atexit, no flush, no
manifest.  The partial session must load under ``inspect``, ``profile``
and ``tail``, showing exactly the completed prefix.
"""

from __future__ import annotations

import io
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

from repro.obs.export import read_trace_jsonl
from repro.obs.inspect import inspect_session
from repro.obs.profile import profile_session
from repro.obs.resource import RESOURCE_FILENAME, read_resource_jsonl
from repro.obs.stream import (
    EVENTS_FILENAME,
    is_partial_session,
    load_session_manifest,
    read_events_jsonl,
)
from repro.obs.tail import tail_session

_SEEDS = (1, 2, 3)

# Completed prefix first (a 2-worker replicate, streamed), then wedge on
# a hung 2-worker pool inside the still-open session, and wait to die.
_VICTIM = """
import pathlib, sys

from repro.faults.injectors import hangy_task
from repro.network.adversaries import RandomConnectedAdversary
from repro.obs import observe
from repro.protocols.flooding import TokenFloodNode
from repro.sim.config import RunConfig
from repro.sim.factories import BoundNode, Constant, NodeSet
from repro.sim.parallel import ParallelExecutor
from repro.sim.runner import replicate

session_dir, ready_path, marker_path = map(pathlib.Path, sys.argv[1:4])
marker_path.write_text("armed")
with observe(trace_dir=session_dir, stream=True, resource_interval=0.02):
    ids = tuple(range(5))
    replicate(
        NodeSet(ids, BoundNode(TokenFloodNode, source=ids[0])),
        Constant(RandomConnectedAdversary(list(ids), seed=7)),
        seeds=%r,
        config=RunConfig(max_rounds=16, workers=2, backend="reference"),
    )
    ready_path.write_text("prefix-complete")
    ParallelExecutor(workers=2).map(
        hangy_task,
        [(str(marker_path), 1), (str(marker_path), 2)],
    )
""" % (_SEEDS,)


def _await(path: pathlib.Path, proc, timeout=90.0):
    t0 = time.monotonic()
    while not path.exists():
        if proc.poll() is not None:
            raise AssertionError(
                f"victim exited early (rc={proc.returncode}):\n"
                + proc.stderr.read().decode()
            )
        if time.monotonic() - t0 > timeout:
            proc.kill()
            raise AssertionError(f"timed out waiting for {path}")
        time.sleep(0.05)


@pytest.fixture(scope="module")
def killed_session(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("crash")
    session_dir = tmp / "session"
    ready = tmp / "ready"
    marker = tmp / "hang-marker"
    env = dict(os.environ, PYTHONPATH=str(
        pathlib.Path(__file__).resolve().parents[2] / "src"
    ))
    env.pop("REPRO_STREAM", None)
    proc = subprocess.Popen(
        [sys.executable, "-c", _VICTIM, str(session_dir), str(ready), str(marker)],
        env=env, start_new_session=True, stderr=subprocess.PIPE,
    )
    try:
        _await(ready, proc)
        # let the pool wedge on the hung task and the sampler tick
        time.sleep(0.5)
        os.killpg(os.getpgid(proc.pid), signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            os.killpg(os.getpgid(proc.pid), signal.SIGKILL)
            proc.wait(timeout=30)
    assert proc.returncode == -signal.SIGKILL
    return session_dir


class TestKilledSweep:
    def test_partial_session_detected(self, killed_session):
        assert is_partial_session(killed_session)
        assert not (killed_session / "manifest.json").exists()

    def test_events_match_completed_prefix(self, killed_session):
        events = read_events_jsonl(killed_session / EVENTS_FILENAME)
        assert events[0]["type"] == "stream-start"
        assert all(e["type"] != "session-close" for e in events)
        streamed_seeds = sorted(
            e["run"]["seed"] for e in events if e["type"] == "run-complete"
        )
        assert streamed_seeds == sorted(_SEEDS)
        # every streamed run's file is present and readable
        file_seeds = sorted(
            read_trace_jsonl(p).manifest.seed
            for p in killed_session.glob("run-*.jsonl")
        )
        assert file_seeds == streamed_seeds

    def test_manifest_synthesized_with_every_run(self, killed_session):
        manifest = load_session_manifest(killed_session)
        assert manifest.partial
        assert len(manifest.runs) == len(_SEEDS)
        assert manifest.provenance.get("hostname")

    def test_inspect_loads_and_marks_partial(self, killed_session):
        report = inspect_session(killed_session)
        assert report.partial
        text = report.render()
        assert "PARTIAL" in text
        assert len(report.runs) == len(_SEEDS)

    def test_profile_reconstructs_prefix_spans(self, killed_session):
        profile = profile_session(killed_session)
        assert profile.partial
        assert profile.by_kind["run"].count == len(_SEEDS)

    def test_tail_reports_no_close_marker(self, killed_session):
        out = io.StringIO()
        assert tail_session(killed_session, out, follow=False) == 1
        text = out.getvalue()
        assert "no close marker" in text
        assert f"{len(_SEEDS)} runs" in text

    def test_resource_timeline_survived(self, killed_session):
        samples = read_resource_jsonl(killed_session / RESOURCE_FILENAME)
        assert samples, "sampler never ticked before the kill"
        assert all("rss_bytes" in s for s in samples)
