"""Integration at the paper's exact parameter geometry: q = 120 s + 1.

The Theorem-6 proof fixes q = 120 s + 1 and n = (N - 4)/(3 q), making
the horizon (q-1)/2 = 60 s.  These tests run the whole pipeline at the
smallest such geometry (s = 1, q = 121) — the real constants, not toy
ones.
"""

from __future__ import annotations

import pytest

from repro.cc.disjointness import random_instance
from repro.core.composition import theorem6_network, theorem6_size
from repro.core.diameter_gap import measure_dichotomy
from repro.core.reduction import theorem6_parameters
from repro.core.simulation import TwoPartyReduction
from repro.protocols.cflood import cflood_factory

S = 1
Q = 120 * S + 1  # 121
N_COORD = 1
BIG_N = theorem6_size(N_COORD, Q)  # 367


class TestPaperGeometry:
    def test_parameters_round_trip(self):
        assert theorem6_parameters(S, BIG_N) == (Q, N_COORD)
        assert (Q - 1) // 2 == 60 * S  # the horizon is exactly 60 s

    def test_answer1_terminates_within_horizon(self):
        # a 10-flooding-round oracle (s = 1 on D = 10 networks) must
        # terminate by round 60 s: 10 <= 60  — with slack for Markov
        inst = random_instance(N_COORD, Q, seed=1, value=1)
        net = theorem6_network(inst)
        assert net.num_nodes == BIG_N
        fac = cflood_factory(source=net.special_nodes()["A_gamma"], d_param=10)
        out = TwoPartyReduction(inst, "T6", fac, seed=1).run()
        assert out.rounds_simulated == 60 * S
        assert out.decision == 1 and out.correct

    def test_answer0_flood_blocked_for_60s_rounds(self):
        inst = random_instance(N_COORD, Q, seed=2, value=0, zero_zero_count=1)
        report = measure_dichotomy(inst, "T6", compute_diameter=False)
        assert report.horizon == 60 * S
        assert report.flood_time_from_a > 60 * S

    def test_conservative_oracle_cannot_fit(self):
        # the s = N conservative protocol has no valid instance geometry:
        # the reduction says nothing about it (and indeed it is correct)
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            theorem6_parameters(s=BIG_N, big_n=BIG_N)

    def test_communication_envelope_at_scale(self):
        inst = random_instance(N_COORD, Q, seed=3, value=1)
        net = theorem6_network(inst)
        fac = cflood_factory(source=net.special_nodes()["A_gamma"], d_param=10)
        out = TwoPartyReduction(inst, "T6", fac, seed=1).run()
        # O(s log N): 60 rounds x a few-hundred-bit frame
        assert out.total_bits < 60 * S * 64 * 10
