"""Cross-model integration tests: dual graphs, heuristics, estimation.

These tie together the extension modules the same way a downstream user
would: express a churn regime as a dual graph and run protocols over it;
pit the doubling heuristic against the conservative baseline on the same
schedule; chain estimation into election across model variants.
"""

from __future__ import annotations

import pytest

from repro.network.dualgraph import DualGraph, DualGraphAdversary, RandomDualGraphAdversary
from repro.network.causality import dynamic_diameter
from repro.network.generators import clique_edges, line_edges, star_edges
from repro.protocols.cflood import CFloodConservativeNode
from repro.protocols.doubling import CFloodDoublingNode
from repro.protocols.leader_election import LeaderElectNode
from repro.sim.coins import CoinSource
from repro.sim.engine import SynchronousEngine


IDS = tuple(range(1, 13))


def star_line_dual():
    """Reliable star (D small guaranteed) + unreliable extra edges."""
    return DualGraph(
        node_ids=IDS,
        reliable=frozenset(star_edges(IDS[0], list(IDS))),
        potential=frozenset(clique_edges(list(IDS))),
    )


class TestProtocolsOverDualGraphs:
    def test_conservative_cflood_correct_under_withholding(self):
        adv = DualGraphAdversary(star_line_dual())
        nodes = {u: CFloodConservativeNode(u, IDS[0], num_nodes=len(IDS)) for u in IDS}
        trace = SynchronousEngine(nodes, adv, CoinSource(1)).run(50)
        assert trace.termination_round == len(IDS) - 1
        assert all(nodes[u].informed for u in IDS)

    def test_leader_election_on_random_dual(self):
        adv = RandomDualGraphAdversary(star_line_dual(), seed=4, p=0.3)
        nodes = {u: LeaderElectNode(u, n_estimate=len(IDS)) for u in IDS}
        trace = SynchronousEngine(nodes, adv, CoinSource(2)).run(40_000)
        assert trace.termination_round is not None
        assert {o[1] for o in trace.outputs.values()} == {max(IDS)}

    def test_withholding_maximizes_diameter(self):
        dual = star_line_dual()
        d_withhold = dynamic_diameter(DualGraphAdversary(dual).schedule(10), max_diameter=20)
        d_generous = dynamic_diameter(
            RandomDualGraphAdversary(dual, seed=1, p=1.0).schedule(10), max_diameter=20
        )
        assert d_generous <= d_withhold


class TestHeuristicVsConservativeSameSchedule:
    def test_doubling_wins_on_benign_loses_on_stragglers(self):
        from repro.network.adversaries import StaticAdversary
        from repro.network.generators import lollipop_edges

        ids = list(range(1, 25))
        benign = StaticAdversary(ids, clique_edges(ids))
        straggler = StaticAdversary(
            ids, lollipop_edges(ids[:19], ids[19:])
        )
        results = {}
        for name, adv in (("benign", benign), ("straggler", straggler)):
            nodes = {
                u: CFloodDoublingNode(u, source=1, num_nodes=len(ids)) for u in ids
            }
            trace = SynchronousEngine(nodes, adv, CoinSource(1)).run(60_000)
            informed = sum(n.informed for n in nodes.values())
            results[name] = (trace.termination_round, informed)
        # same code, same constants: full coverage on the clique,
        # premature confirm on the lollipop
        assert results["benign"][1] == len(ids)
        assert results["straggler"][1] < len(ids)
