"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import EXPERIMENTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_fig1(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "EXP-F1" in out and "reference" in out

    def test_quick_thm6(self, capsys):
        assert main(["thm6", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "EXP-T6" in out

    def test_quick_thm7(self, capsys):
        assert main(["thm7", "--quick"]) == 0
        assert "EXP-T7" in capsys.readouterr().out

    def test_quick_cc(self, capsys):
        assert main(["cc", "--quick"]) == 0
        assert "Thm1 bound" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])

    def test_every_registered_runner_is_callable(self):
        for name, (desc, runner) in EXPERIMENTS.items():
            assert callable(runner) and desc
