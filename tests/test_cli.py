"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import EXPERIMENTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_fig1(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "EXP-F1" in out and "reference" in out

    @pytest.mark.slow
    @pytest.mark.parametrize("command", sorted(EXPERIMENTS))
    def test_quick_on_every_command(self, command, capsys):
        """--quick must be accepted (and not crash) on every command.

        The figure commands regenerate fixed constructions — --quick is
        a documented no-op there; every other command shrinks its grid.
        """
        assert main([command, "--quick"]) == 0
        out = capsys.readouterr().out
        assert "EXP-" in out

    def test_quick_thm6(self, capsys):
        assert main(["thm6", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "EXP-T6" in out

    def test_quick_thm7(self, capsys):
        assert main(["thm7", "--quick"]) == 0
        assert "EXP-T7" in capsys.readouterr().out

    def test_quick_cc(self, capsys):
        assert main(["cc", "--quick"]) == 0
        assert "Thm1 bound" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])

    def test_every_registered_runner_is_callable(self):
        for name, (desc, runner) in EXPERIMENTS.items():
            assert callable(runner) and desc

    def test_figures_document_no_quick_grid(self):
        for name in ("fig1", "fig2", "fig3"):
            assert "no quick grid" in EXPERIMENTS[name][0]


class TestCliObservability:
    def test_metrics_flag_prints_aggregates(self, capsys):
        assert main(["thm8", "--quick", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "-- metrics --" in out
        assert "rounds_total" in out
        assert "phase_seconds{phase=actions}" in out
        assert "timing:" in out  # the ExperimentResult timing sidecar

    def test_trace_out_writes_manifest_and_runs(self, tmp_path, capsys):
        out_dir = tmp_path / "thm8"
        assert main(["thm8", "--quick", "--trace-out", str(out_dir), "--metrics"]) == 0
        capsys.readouterr()
        manifest = json.loads((out_dir / "manifest.json").read_text())
        assert manifest["label"] == "thm8"
        assert manifest["runs"], "at least one engine run persisted"
        run_files = sorted(out_dir.glob("run-*.jsonl"))
        assert len(run_files) == len(manifest["runs"])

        # acceptance: inspect reports rounds / bits / per-node bits and a
        # phase breakdown summing to within 10% of the run's wall time
        from repro.obs.inspect import inspect_run

        report = inspect_run(run_files[0])
        assert report.rounds > 0
        assert report.total_bits > 0
        assert report.bits_by_node
        assert sum(report.bits_by_node.values()) == report.total_bits
        assert report.wall_seconds is not None
        assert sum(report.phase_seconds.values()) >= 0.9 * report.wall_seconds
        assert report.diameter is not None

    def test_inspect_command(self, tmp_path, capsys):
        out_dir = tmp_path / "run"
        assert main(["thm8", "--quick", "--trace-out", str(out_dir)]) == 0
        capsys.readouterr()
        run_file = sorted(out_dir.glob("run-*.jsonl"))[0]
        assert main(["inspect", str(run_file)]) == 0
        out = capsys.readouterr().out
        assert "rounds" in out
        assert "total bits" in out
        assert "realized dynamic D" in out
        assert "phase timing" in out

    def test_inspect_without_path_errors(self, capsys):
        assert main(["inspect"]) == 2
        assert "usage" in capsys.readouterr().err

    def test_inspect_missing_file_errors(self, capsys):
        assert main(["inspect", "no/such/run.jsonl"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_path_rejected_for_experiments(self, capsys):
        with pytest.raises(SystemExit):
            main(["thm6", "some/file.jsonl"])


class TestCliEdgeCases:
    """Malformed inputs must exit 2 with a message, never a traceback."""

    def test_inspect_empty_directory(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["inspect", str(empty)]) == 2
        err = capsys.readouterr().err
        assert "not an observation session directory" in err

    def test_inspect_partial_session(self, tmp_path, capsys):
        # manifest.json names a run file that was never written
        session = tmp_path / "partial"
        session.mkdir()
        (session / "manifest.json").write_text(
            json.dumps(
                {
                    "label": "x",
                    "runs": [
                        {
                            "seed": 1,
                            "num_nodes": 4,
                            "adversary": "x",
                            "trace_file": "run-0001.jsonl",
                        }
                    ],
                }
            )
        )
        assert main(["inspect", str(session)]) == 2
        err = capsys.readouterr().err
        assert "partial or truncated session" in err

    def test_inspect_malformed_round_line(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text(
            '{"type": "manifest", "format_version": 2, "num_nodes": 2, '
            '"seed": 1, "adversary": "x"}\n'
            '{"type": "round"}\n'
            '{"type": "summary"}\n'
        )
        assert main(["inspect", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "malformed round line" in err

    def test_inspect_non_jsonl_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("this is not json\n")
        assert main(["inspect", str(bad)]) == 2
        assert "not valid JSONL" in capsys.readouterr().err

    def test_audit_ledger_missing_format_version(self, tmp_path, capsys):
        bad = tmp_path / "run-0001.jsonl"
        bad.write_text(
            '{"type": "manifest", "kind": "reduction", "num_nodes": 10, '
            '"seed": 1, "adversary": "x"}\n'
            '{"type": "ledger", "kind": "spoiled", "party": "alice", '
            '"round": 1, "count": 0, "budget": 3, "ok": true}\n'
            '{"type": "summary"}\n'
        )
        assert main(["audit", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "format_version" in err

    def test_audit_malformed_file(self, tmp_path, capsys):
        bad = tmp_path / "run-0001.jsonl"
        bad.write_text('{"type": "round"}\n')
        assert main(["audit", str(bad)]) == 2
        assert "repro audit:" in capsys.readouterr().err

    def test_bench_diff_non_object_json(self, tmp_path, capsys):
        old = tmp_path / "old"
        new = tmp_path / "new"
        for d in (old, new):
            d.mkdir()
            (d / "EXP-X.json").write_text("[1, 2, 3]\n")
        assert main(["bench-diff", str(old), str(new)]) == 2
        assert "expected a JSON object" in capsys.readouterr().err

    def test_bench_diff_missing_key_is_reported_not_raised(self, tmp_path, capsys):
        old = tmp_path / "old"
        new = tmp_path / "new"
        for d in (old, new):
            d.mkdir()
        payload = {"exp_id": "EXP-A", "rows": [], "summary": {}, "timings": {}}
        (old / "EXP-A.json").write_text(json.dumps(payload))
        # EXP-A vanished from the new run: exit 1 with an only-old row
        assert main(["bench-diff", str(old), str(new)]) == 1
        out = capsys.readouterr().out
        assert "only-old" in out and "EXP-A" in out

    def test_bench_diff_renamed_key_shows_both_sides(self, tmp_path, capsys):
        old = tmp_path / "old"
        new = tmp_path / "new"
        for d in (old, new):
            d.mkdir()
        (old / "EXP-A.json").write_text(
            json.dumps({"exp_id": "EXP-A", "rows": [], "summary": {}})
        )
        (new / "EXP-B.json").write_text(
            json.dumps({"exp_id": "EXP-B", "rows": [], "summary": {}})
        )
        assert main(["bench-diff", str(old), str(new)]) == 1
        out = capsys.readouterr().out
        assert "only-old" in out and "only-new" in out


class TestCliStreaming:
    """PR 7 surface: --stream, tail, and bench-history."""

    def test_stream_requires_trace_out(self, capsys):
        with pytest.raises(SystemExit):
            main(["thm6", "--quick", "--stream"])
        assert "--stream requires --trace-out" in capsys.readouterr().err

    def test_stream_writes_events_and_links_manifest(self, tmp_path, capsys):
        out_dir = tmp_path / "sess"
        assert main(["thm6", "--quick", "--trace-out", str(out_dir),
                     "--stream", "--no-progress"]) == 0
        capsys.readouterr()
        events = [
            json.loads(line)
            for line in (out_dir / "events.jsonl").read_text().splitlines()
        ]
        types = [e["type"] for e in events]
        assert types[0] == "stream-start" and types[-1] == "session-close"
        assert "run-complete" in types
        manifest = json.loads((out_dir / "manifest.json").read_text())
        assert manifest["events_file"] == "events.jsonl"
        assert manifest["provenance"]["hostname"]

    def test_no_stream_overrides_env(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_STREAM", "1")
        out_dir = tmp_path / "sess"
        assert main(["fig1", "--trace-out", str(out_dir), "--no-stream"]) == 0
        capsys.readouterr()
        assert not (out_dir / "events.jsonl").exists()

    def test_inspect_shows_provenance(self, tmp_path, capsys):
        out_dir = tmp_path / "sess"
        assert main(["thm6", "--quick", "--trace-out", str(out_dir)]) == 0
        capsys.readouterr()
        assert main(["inspect", str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "provenance:" in out and "host=" in out

    def test_tail_closed_session(self, tmp_path, capsys):
        out_dir = tmp_path / "sess"
        assert main(["thm6", "--quick", "--trace-out", str(out_dir),
                     "--stream", "--no-progress"]) == 0
        capsys.readouterr()
        assert main(["tail", str(out_dir), "--no-follow"]) == 0
        out = capsys.readouterr().out
        assert "closed cleanly" in out

    def test_tail_unstreamed_directory_exits_two(self, tmp_path, capsys):
        assert main(["tail", str(tmp_path), "--no-follow"]) == 2
        assert "REPRO_STREAM" in capsys.readouterr().err

    def test_tail_without_path_errors(self, capsys):
        assert main(["tail"]) == 2
        assert "usage" in capsys.readouterr().err

    def test_window_rejected_off_bench_history(self, capsys):
        with pytest.raises(SystemExit):
            main(["thm6", "--window", "3"])
        assert "--window" in capsys.readouterr().err


def _history_line(wall, t):
    return json.dumps({
        "exp_id": "EXP-X", "unix_time": t, "provenance": {},
        "backend": "reference", "timings": {"wall_seconds": wall},
        "summary": {"n": 4},
    })


class TestCliBenchHistory:
    def test_steady_history_exits_zero(self, tmp_path, capsys):
        hist = tmp_path / "history.jsonl"
        hist.write_text("\n".join(_history_line(1.0, t) for t in range(5)) + "\n")
        assert main(["bench-history", str(hist)]) == 0
        out = capsys.readouterr().out
        assert "EXP-X" in out and "ok" in out

    def test_injected_regression_exits_one(self, tmp_path, capsys):
        hist = tmp_path / "history.jsonl"
        lines = [_history_line(1.0, t) for t in range(3)]
        lines.append(_history_line(2.0, 3))  # synthetic 2x slow-down
        hist.write_text("\n".join(lines) + "\n")
        assert main(["bench-history", str(hist)]) == 1
        out = capsys.readouterr().out
        assert "regression" in out

    def test_threshold_tolerates_regression(self, tmp_path, capsys):
        hist = tmp_path / "history.jsonl"
        lines = [_history_line(1.0, t) for t in range(3)]
        lines.append(_history_line(2.0, 3))
        hist.write_text("\n".join(lines) + "\n")
        assert main(["bench-history", str(hist), "--threshold", "1.5"]) == 0

    def test_empty_history_exits_two(self, tmp_path, capsys):
        hist = tmp_path / "history.jsonl"
        hist.write_text("")
        assert main(["bench-history", str(hist)]) == 2
        assert "no benchmark records" in capsys.readouterr().err

    def test_missing_file_exits_two(self, tmp_path, capsys):
        assert main(["bench-history", str(tmp_path / "nope.jsonl")]) == 2
        capsys.readouterr()

    def test_report_baseline_accepts_history_file(self, tmp_path, capsys):
        out_dir = tmp_path / "sess"
        assert main(["thm6", "--quick", "--trace-out", str(out_dir)]) == 0
        capsys.readouterr()
        hist = tmp_path / "history.jsonl"
        hist.write_text("\n".join(_history_line(1.0, t) for t in range(5)) + "\n")
        html = tmp_path / "report.html"
        assert main(["report", str(out_dir), "--out", str(html),
                     "--baseline", str(hist)]) == 0
        capsys.readouterr()
        text = html.read_text()
        assert "EXP-X" in text and "trend" in text.lower()
