"""Tests for RoundTopology and the generators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ModelViolation
from repro.network.generators import (
    binary_tree_edges,
    clique_edges,
    line_edges,
    random_connected_edges,
    random_tree_edges,
    ring_edges,
    star_edges,
)
from repro.network.topology import RoundTopology


class TestRoundTopology:
    def test_normalizes_and_dedups_edges(self):
        t = RoundTopology([1, 2, 3], [(2, 1), (1, 2), (2, 3)])
        assert t.edges == frozenset({(1, 2), (2, 3)})
        assert t.num_edges == 2

    def test_rejects_self_loop(self):
        with pytest.raises(ModelViolation):
            RoundTopology([1, 2], [(1, 1)])

    def test_rejects_foreign_edge(self):
        with pytest.raises(ModelViolation):
            RoundTopology([1, 2], [(1, 5)])

    def test_neighbors_and_degree(self):
        t = RoundTopology([1, 2, 3], line_edges([1, 2, 3]))
        assert t.neighbors(2) == [1, 3]
        assert t.degree(1) == 1

    def test_adjacency_has_true_diagonal(self):
        t = RoundTopology([1, 2], [(1, 2)])
        adj = t.adjacency()
        assert adj.dtype == bool
        assert adj.diagonal().all()
        assert adj[0, 1] and adj[1, 0]

    def test_connectivity(self):
        assert RoundTopology([1, 2, 3], line_edges([1, 2, 3])).is_connected()
        assert not RoundTopology([1, 2, 3], [(1, 2)]).is_connected()
        assert RoundTopology([7], []).is_connected()

    def test_components(self):
        t = RoundTopology([1, 2, 3, 4], [(1, 2), (3, 4)])
        comps = {frozenset(c) for c in t.components()}
        assert comps == {frozenset({1, 2}), frozenset({3, 4})}

    def test_static_diameter_line(self):
        t = RoundTopology(range(5), line_edges(list(range(5))))
        assert t.static_diameter() == 4

    def test_static_diameter_star(self):
        t = RoundTopology(range(5), star_edges(0, list(range(1, 5))))
        assert t.static_diameter() == 2

    def test_static_eccentricity_disconnected_sentinel(self):
        t = RoundTopology([1, 2, 3], [(1, 2)])
        assert t.static_eccentricity(3) == 3

    def test_union_and_with_edges(self):
        a = RoundTopology([1, 2], [(1, 2)])
        b = RoundTopology([2, 3], [(2, 3)])
        u = a.union(b)
        assert u.edges == frozenset({(1, 2), (2, 3)})
        w = a.with_edges([(1, 2)])
        assert w == a

    def test_equality_and_hash(self):
        a = RoundTopology([1, 2], [(1, 2)])
        b = RoundTopology([1, 2], [(2, 1)])
        assert a == b and hash(a) == hash(b)


class TestGenerators:
    def test_line(self):
        assert line_edges([3, 1, 2]) == {(3, 1), (1, 2)}

    def test_ring(self):
        edges = ring_edges([1, 2, 3])
        assert len(edges) == 3
        t = RoundTopology([1, 2, 3], edges)
        assert all(t.degree(u) == 2 for u in [1, 2, 3])

    def test_star(self):
        assert star_edges(5, [1, 2, 5]) == {(5, 1), (5, 2)}

    def test_clique(self):
        assert len(clique_edges(list(range(5)))) == 10

    def test_binary_tree(self):
        edges = binary_tree_edges([0, 1, 2, 3, 4])
        assert edges == {(0, 1), (0, 2), (1, 3), (1, 4)}

    @given(st.integers(1, 40), st.integers(0, 2**32))
    def test_random_tree_is_spanning(self, n, seed):
        ids = list(range(n))
        rng = np.random.default_rng(seed)
        edges = random_tree_edges(ids, rng)
        assert len(edges) == n - 1
        assert RoundTopology(ids, edges).is_connected()

    @given(st.integers(2, 25), st.integers(0, 2**32), st.floats(0.0, 0.5))
    def test_random_connected_is_connected(self, n, seed, p):
        ids = list(range(n))
        rng = np.random.default_rng(seed)
        edges = random_connected_edges(ids, rng, extra_edge_prob=p)
        t = RoundTopology(ids, edges)
        assert t.is_connected()
        assert t.num_edges >= n - 1
