"""Tests for the causal relation and the dynamic diameter (Section 2)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.network.adversaries import (
    OverlappingStarsAdversary,
    RandomConnectedAdversary,
    RotatingStarAdversary,
    StaticAdversary,
)
from repro.network.causality import (
    causal_closure,
    dynamic_diameter,
    eccentricity_from,
    flood_completion_time,
    reaches_all_within,
)
from repro.network.dynamic import DynamicSchedule
from repro.network.generators import clique_edges, line_edges, star_edges
from repro.network.topology import RoundTopology


def static_schedule(ids, edges):
    return DynamicSchedule([RoundTopology(ids, edges)])


class TestStaticDiameters:
    def test_line(self):
        ids = list(range(6))
        assert dynamic_diameter(static_schedule(ids, line_edges(ids))) == 5

    def test_star(self):
        ids = list(range(6))
        assert dynamic_diameter(static_schedule(ids, star_edges(0, ids))) == 2

    def test_clique(self):
        ids = list(range(6))
        assert dynamic_diameter(static_schedule(ids, clique_edges(ids))) == 1

    def test_single_node(self):
        # a lone node influences itself instantly; D = 1 by the
        # "minimum z >= 1 checked" convention of eccentricity_from
        ids = [1]
        sched = static_schedule(ids, [])
        assert eccentricity_from(sched, 0, 3) == 1

    def test_cap_returns_none(self):
        ids = list(range(10))
        sched = static_schedule(ids, line_edges(ids))
        assert dynamic_diameter(sched, max_diameter=3) is None


class TestDynamicSchedules:
    def test_rotating_star_is_slow(self):
        ids = list(range(8))
        d = dynamic_diameter(RotatingStarAdversary(ids).schedule(10))
        assert d == len(ids) - 1  # Theta(N) despite per-round diameter 2

    def test_overlapping_stars_is_fast(self):
        ids = list(range(12))
        d = dynamic_diameter(OverlappingStarsAdversary(ids).schedule(14))
        assert d <= 3

    @given(st.integers(0, 200))
    def test_connected_schedule_diameter_at_most_n_minus_1(self, seed):
        ids = list(range(7))
        sched = RandomConnectedAdversary(ids, seed=seed).schedule(10)
        d = dynamic_diameter(sched, max_diameter=len(ids))
        assert d is not None and 1 <= d <= len(ids) - 1


class TestClosureAndFlood:
    def test_closure_grows_monotonically(self):
        ids = list(range(6))
        sched = static_schedule(ids, line_edges(ids))
        prev = frozenset({0})
        for z in range(1, 6):
            cur = causal_closure(sched, [0], start_round=0, rounds=z)
            assert prev <= cur
            assert len(cur) == z + 1  # one new line node per round
            prev = cur

    def test_flood_completion_matches_eccentricity(self):
        ids = list(range(6))
        sched = static_schedule(ids, line_edges(ids))
        assert flood_completion_time(sched, 0) == 5
        assert flood_completion_time(sched, 3) == 3  # middle node is closer

    def test_flood_never_exceeds_diameter(self):
        ids = list(range(8))
        for seed in range(5):
            sched = RandomConnectedAdversary(ids, seed=seed).schedule(12)
            d = dynamic_diameter(sched, max_diameter=20)
            for src in ids:
                t = flood_completion_time(sched, src, max_rounds=20)
                assert t is not None and t <= d

    def test_flood_incomplete_on_disconnected_static(self):
        ids = [1, 2, 3]
        sched = DynamicSchedule([RoundTopology(ids, [(1, 2)])])
        assert flood_completion_time(sched, 1, max_rounds=10) is None

    def test_reaches_all_within(self):
        ids = list(range(5))
        sched = static_schedule(ids, line_edges(ids))
        assert reaches_all_within(sched, 0, 4)
        assert not reaches_all_within(sched, 0, 3)


class TestDynamicScheduleContainer:
    def test_rounds_one_based_and_tail_repeat(self):
        ids = [1, 2, 3]
        t1 = RoundTopology(ids, [(1, 2), (2, 3)])
        t2 = RoundTopology(ids, [(1, 3), (2, 3)])
        sched = DynamicSchedule([t1, t2])
        assert sched.topology(1) is t1
        assert sched.topology(2) is t2
        assert sched.topology(9) is t2

    def test_round_zero_rejected(self):
        ids = [1, 2]
        sched = static_schedule(ids, [(1, 2)])
        with pytest.raises(Exception):
            sched.topology(0)

    def test_mixed_node_sets_rejected(self):
        t1 = RoundTopology([1, 2], [(1, 2)])
        t2 = RoundTopology([1, 3], [(1, 3)])
        with pytest.raises(Exception):
            DynamicSchedule([t1, t2])

    def test_all_connected(self):
        ids = [1, 2, 3]
        good = static_schedule(ids, line_edges(ids))
        assert good.all_connected()
        bad = DynamicSchedule([RoundTopology(ids, [(1, 2)])])
        assert not bad.all_connected()
