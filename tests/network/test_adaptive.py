"""Tests for the fully adaptive blocking adversary."""

from __future__ import annotations

import pytest

from repro.network.adaptive import AdaptiveBlockingAdversary
from repro.network.adversaries import RandomConnectedAdversary
from repro.protocols.flooding import GossipMaxNode, TokenFloodNode
from repro.sim.coins import CoinSource
from repro.sim.engine import SynchronousEngine

IDS = list(range(1, 13))


class TestAgainstDeterministicFlood:
    def test_token_flood_advances_exactly_one_per_round(self):
        # always-send holders defeat the blocker: the crossing edge
        # transfers every round, so informed grows by exactly 1
        adv = AdaptiveBlockingAdversary(IDS, probe=lambda n: n.informed)
        nodes = {u: TokenFloodNode(u, source=1) for u in IDS}
        eng = SynchronousEngine(nodes, adv, CoinSource(1))
        for r in range(1, len(IDS)):
            eng.step()
            informed = sum(n.informed for n in nodes.values())
            assert informed == r + 1, r
        assert eng.trace.termination_round == len(IDS) - 1

    def test_adversary_stretches_d_to_theta_n(self):
        # against the oblivious random adversary the same flood is fast
        fast_nodes = {u: TokenFloodNode(u, source=1) for u in IDS}
        eng = SynchronousEngine(
            fast_nodes, RandomConnectedAdversary(IDS, seed=3), CoinSource(1)
        )
        fast = eng.run(100).termination_round
        assert fast < len(IDS) - 1  # random trees are shallower than a line


class TestAgainstRandomizedGossip:
    def test_gossip_stalls_almost_completely(self):
        target = max(IDS)
        adv = AdaptiveBlockingAdversary(IDS, probe=lambda n: n.best == target)
        nodes = {u: GossipMaxNode(u) for u in IDS}
        eng = SynchronousEngine(nodes, adv, CoinSource(2))
        rounds = 400
        eng.run(rounds, stop_on_termination=False)
        holders = sum(n.best == target for n in nodes.values())
        # information crosses only when ALL holders send (p = 2^-k):
        # after 400 rounds, the max has reached only a handful of nodes
        assert holders <= 5
        # while the oblivious baseline finishes in a few dozen rounds
        base_nodes = {u: GossipMaxNode(u) for u in IDS}
        base = SynchronousEngine(
            base_nodes, RandomConnectedAdversary(IDS, seed=3), CoinSource(2)
        )
        base.run(
            rounds,
            stop_on_termination=False,
            stop=lambda ns: all(n.best == target for n in ns.values()),
        )
        assert base.round < 100
        assert all(n.best == target for n in base_nodes.values())

    def test_transfer_rounds_recorded(self):
        target = max(IDS)
        adv = AdaptiveBlockingAdversary(IDS, probe=lambda n: n.best == target)
        nodes = {u: GossipMaxNode(u) for u in IDS}
        SynchronousEngine(nodes, adv, CoinSource(4)).run(200, stop_on_termination=False)
        holders = sum(n.best == target for n in nodes.values())
        # every growth step beyond the initial holder required a
        # recorded transfer round
        assert holders <= 1 + len(adv.transfer_rounds)


class TestTopologyLegality:
    def test_always_connected(self):
        adv = AdaptiveBlockingAdversary(IDS, probe=lambda n: n.informed)
        nodes = {u: TokenFloodNode(u, source=1) for u in IDS}
        eng = SynchronousEngine(nodes, adv, CoinSource(5))
        # the engine's per-round connectivity validation would raise
        eng.run(30, stop_on_termination=False)

    def test_degenerate_partitions_fall_back_to_line(self):
        adv = AdaptiveBlockingAdversary(IDS, probe=lambda n: True)

        class FakeView:
            nodes = {u: TokenFloodNode(u, source=1) for u in IDS}

            def is_receiving(self, uid):
                return True

            def is_sending(self, uid):
                return False

        edges = adv.edges(1, FakeView())
        assert len(edges) == len(IDS) - 1  # a single line
