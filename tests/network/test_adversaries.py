"""Tests for the adversary classes."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.network.adversaries import (
    FunctionAdversary,
    OverlappingStarsAdversary,
    RandomConnectedAdversary,
    RotatingStarAdversary,
    ScheduleAdversary,
    ShiftingLineAdversary,
    StaticAdversary,
    TIntervalAdversary,
)
from repro.network.generators import line_edges
from repro.network.topology import RoundTopology


IDS = list(range(1, 9))


def _connected(ids, edges):
    return RoundTopology(ids, edges).is_connected()


class TestStaticAndSchedule:
    def test_static_constant(self):
        adv = StaticAdversary(IDS, line_edges(IDS))
        assert set(adv.edges(1, None)) == set(adv.edges(99, None))

    def test_schedule_playback_and_tail(self):
        sched = StaticAdversary(IDS, line_edges(IDS)).schedule(3)
        adv = ScheduleAdversary(sched)
        assert set(adv.edges(2, None)) == sched.topology(2).edges
        assert set(adv.edges(50, None)) == sched.topology(3).edges

    def test_function_adversary(self):
        adv = FunctionAdversary(IDS, lambda r, v: line_edges(IDS))
        assert _connected(IDS, adv.edges(1, None))


class TestRandomFamilies:
    @given(st.integers(0, 1000), st.integers(1, 30))
    def test_random_connected_every_round(self, seed, r):
        adv = RandomConnectedAdversary(IDS, seed=seed)
        assert _connected(IDS, adv.edges(r, None))

    def test_random_deterministic_per_round(self):
        a = RandomConnectedAdversary(IDS, seed=5)
        b = RandomConnectedAdversary(IDS, seed=5)
        assert set(a.edges(3, None)) == set(b.edges(3, None))

    @given(st.integers(0, 1000), st.integers(1, 30))
    def test_shifting_line_connected(self, seed, r):
        adv = ShiftingLineAdversary(IDS, seed=seed)
        edges = set(adv.edges(r, None))
        assert len(edges) == len(IDS) - 1
        assert _connected(IDS, edges)

    def test_shifting_line_reshuffle_every(self):
        adv = ShiftingLineAdversary(IDS, seed=1, reshuffle_every=3)
        assert set(adv.edges(1, None)) == set(adv.edges(3, None))
        assert set(adv.edges(3, None)) != set(adv.edges(4, None))

    def test_reshuffle_every_validated(self):
        with pytest.raises(ConfigurationError):
            ShiftingLineAdversary(IDS, seed=1, reshuffle_every=0)


class TestStars:
    def test_rotating_star_center_moves(self):
        adv = RotatingStarAdversary(IDS)
        e1, e2 = set(adv.edges(1, None)), set(adv.edges(2, None))
        assert e1 != e2
        assert _connected(IDS, e1)

    def test_overlapping_stars_connected_and_churning(self):
        adv = OverlappingStarsAdversary(IDS)
        for r in range(1, 10):
            assert _connected(IDS, adv.edges(r, None))
        assert set(adv.edges(1, None)) != set(adv.edges(2, None))

    def test_star_needs_two_nodes(self):
        with pytest.raises(ConfigurationError):
            RotatingStarAdversary([1])


class TestTInterval:
    def test_stable_within_interval(self):
        adv = TIntervalAdversary(IDS, seed=2, interval=4)
        assert set(adv.edges(1, None)) == set(adv.edges(4, None))
        assert set(adv.edges(4, None)) != set(adv.edges(5, None))

    @given(st.integers(1, 6), st.integers(1, 20))
    def test_connected_every_round(self, interval, r):
        adv = TIntervalAdversary(IDS, seed=3, interval=interval)
        assert _connected(IDS, adv.edges(r, None))
