"""Tests for the dual graph model and the paper's carry-over claim."""

from __future__ import annotations

import pytest

from repro.cc.disjointness import random_instance
from repro.core.composition import theorem6_network, theorem7_network
from repro.errors import ConfigurationError, ModelViolation
from repro.network.causality import dynamic_diameter, flood_completion_time
from repro.network.dualgraph import (
    DualGraph,
    DualGraphAdversary,
    RandomDualGraphAdversary,
    as_dual_graph,
)
from repro.network.generators import clique_edges, line_edges
from repro.network.topology import RoundTopology

IDS = tuple(range(1, 9))


def make_dual():
    return DualGraph(
        node_ids=IDS,
        reliable=frozenset(line_edges(list(IDS))),
        potential=frozenset(clique_edges(list(IDS))),
    )


class TestDualGraph:
    def test_reliable_must_be_subset(self):
        with pytest.raises(ConfigurationError):
            DualGraph(IDS, frozenset({(1, 3)}), frozenset({(1, 2)}))

    def test_unreliable_complement(self):
        d = make_dual()
        assert d.unreliable == d.potential - d.reliable
        assert d.reliable_connected()

    def test_admits(self):
        d = make_dual()
        assert d.admits(d.reliable)
        assert d.admits(d.potential)
        assert d.admits(set(d.reliable) | {(1, 5)})
        assert not d.admits(set(d.reliable) - {(1, 2)})  # dropped reliable
        assert not d.admits(set(d.reliable) | {(1, 99)})  # foreign edge

    def test_admits_schedule(self):
        d = make_dual()
        good = [d.reliable, set(d.reliable) | {(2, 7)}]
        assert d.admits_schedule(good)
        assert not d.admits_schedule([set()])


class TestDualGraphAdversaries:
    def test_default_withholds_everything(self):
        adv = DualGraphAdversary(make_dual())
        assert set(adv.edges(1, None)) == set(make_dual().reliable)

    def test_requires_connected_reliable(self):
        bad = DualGraph(IDS, frozenset({(1, 2)}), frozenset(clique_edges(list(IDS))))
        with pytest.raises(ConfigurationError):
            DualGraphAdversary(bad)

    def test_chooser_validated(self):
        adv = DualGraphAdversary(make_dual(), chooser=lambda r, v: {(1, 2)})
        # (1,2) is reliable, not unreliable: the chooser overstepped
        with pytest.raises(ModelViolation):
            adv.edges(1, None)

    def test_random_activation_legal_and_varied(self):
        d = make_dual()
        adv = RandomDualGraphAdversary(d, seed=5, p=0.5)
        rounds = [frozenset(adv.edges(r, None)) for r in range(1, 8)]
        assert d.admits_schedule(rounds)
        assert len(set(rounds)) > 1  # actually varies

    def test_unreliable_edges_speed_up_flooding(self):
        d = make_dual()
        slow = DualGraphAdversary(d).schedule(12)
        fast = RandomDualGraphAdversary(d, seed=3, p=1.0).schedule(12)
        t_slow = flood_completion_time(slow, 1, max_rounds=20)
        t_fast = flood_completion_time(fast, 1, max_rounds=20)
        assert t_fast < t_slow == len(IDS) - 1


class TestLowerBoundConstructionsAreDualGraphs:
    """The paper: 'all our results extend to the dual graph model
    without any modification' — the constructions *are* dual-graph
    executions."""

    @pytest.mark.parametrize("value", [0, 1])
    def test_theorem6_schedule_is_legal_dual_execution(self, value):
        inst = random_instance(3, 9, seed=2, value=value)
        net = theorem6_network(inst)
        dual = as_dual_graph(net)
        sched = net.schedule(9 + 2)
        assert dual.admits_schedule(sched.edge_sets(9 + 2))
        # with middles sending (the other adaptive resolution) too
        sched2 = net.schedule(9 + 2, receiving_policy=lambda uid, r: False)
        assert dual.admits_schedule(sched2.edge_sets(9 + 2))

    @pytest.mark.parametrize("value", [0, 1])
    def test_theorem7_schedule_is_legal_dual_execution(self, value):
        inst = random_instance(2, 9, seed=4, value=value)
        net = theorem7_network(inst)
        dual = as_dual_graph(net)
        assert dual.admits_schedule(net.schedule(9 + 2).edge_sets(9 + 2))

    def test_reliable_part_carries_the_structure(self):
        inst = random_instance(3, 9, seed=2, value=1)
        net = theorem6_network(inst)
        dual = as_dual_graph(net)
        gamma, lam = net.subnets
        # the permanent spokes, Λ mid-lines and bridges are reliable
        assert gamma.spoke_edges() <= dual.reliable
        assert lam.spoke_edges() <= dual.reliable
        assert lam.line_edges() <= dual.reliable
        assert net.bridges <= dual.reliable
        # the removable chain edges are the unreliable ones
        assert dual.unreliable
        assert dual.reliable_connected()

    def test_answer1_dual_still_small_diameter(self):
        inst = random_instance(2, 9, seed=5, value=1)
        net = theorem6_network(inst)
        dual = as_dual_graph(net)
        # even the all-withholding dual adversary keeps D small on
        # answer-1 instances: the reliable skeleton suffices
        adv = DualGraphAdversary(dual)
        d = dynamic_diameter(adv.schedule(12), max_diameter=30)
        assert d is not None and d <= 10
