"""Smoke tests: every example script runs end to end.

The examples are part of the public deliverable; these tests execute the
fast ones in-process (runpy) and assert on their printed claims.
"""

from __future__ import annotations

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, argv=(), capsys=None) -> str:
    old_argv = sys.argv
    sys.argv = [name, *argv]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out if capsys else ""


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys=capsys)
        assert "dynamic diameter" in out
        assert "premature!" in out  # the wrong-D CFLOOD demonstration

    def test_visualize_construction(self, capsys):
        out = run_example("visualize_construction.py", capsys=capsys)
        assert "[reference r1]" in out
        assert "o---o" in out  # the detached middles / centipede line

    def test_lower_bound_construction(self, capsys):
        out = run_example("lower_bound_construction.py", argv=["25"], capsys=capsys)
        assert "answer-1 instance" in out and "answer-0 instance" in out
        assert "the fast oracle was fooled" in out

    def test_lower_bound_rejects_bad_q(self):
        with pytest.raises(SystemExit):
            run_example("lower_bound_construction.py", argv=["10"])

    @pytest.mark.slow
    def test_diameter_gap_study_quick(self, capsys):
        out = run_example("diameter_gap_study.py", argv=["--quick"], capsys=capsys)
        assert "EXP-GAP" in out and "EXP-SENS" in out

    def test_instrumented_run(self, capsys):
        out = run_example("instrumented_run.py", capsys=capsys)
        assert "elected in round" in out
        assert "phase timing" in out
        for phase in ("actions", "adversary", "validation", "delivery",
                      "termination", "(engine)"):
            assert phase in out

    @pytest.mark.slow
    def test_swarm_leader_election(self, capsys):
        out = run_example("swarm_leader_election.py", capsys=capsys)
        assert "elected" in out
        assert "NO leader" in out  # the bad-estimate stall
