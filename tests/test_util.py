"""Unit and property tests for repro._util."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro._util import (
    bit_size,
    bits_for_ids,
    ceil_log2,
    geometric_mean,
    is_odd,
    pairwise_disjoint,
    require,
    stable_hash64,
)
from repro.errors import ConfigurationError


class TestCeilLog2:
    def test_powers_of_two(self):
        assert ceil_log2(1) == 0
        assert ceil_log2(2) == 1
        assert ceil_log2(4) == 2
        assert ceil_log2(1024) == 10

    def test_between_powers(self):
        assert ceil_log2(3) == 2
        assert ceil_log2(5) == 3
        assert ceil_log2(1000) == 10

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            ceil_log2(0)

    @given(st.integers(1, 10**9))
    def test_definition(self, n):
        k = ceil_log2(n)
        assert 2**k >= n
        assert k == 0 or 2 ** (k - 1) < n


class TestBitsForIds:
    def test_minimum_one(self):
        assert bits_for_ids(1) == 1
        assert bits_for_ids(2) == 1

    @given(st.integers(2, 10**6))
    def test_can_name_all(self, n):
        assert 2 ** bits_for_ids(n) >= n


class TestBitSize:
    def test_scalars(self):
        assert bit_size(None) == 1
        assert bit_size(True) == 1
        assert bit_size(0) == 2
        assert bit_size(1.5) == 64
        assert bit_size("ab") == 16
        assert bit_size(b"ab") == 16

    def test_int_scales_with_magnitude(self):
        assert bit_size(2**20) > bit_size(3)

    def test_tuple_framing(self):
        assert bit_size(()) == 2
        assert bit_size((1,)) > bit_size(1)

    def test_unknown_type_rejected(self):
        with pytest.raises(ConfigurationError):
            bit_size(object())

    def test_payload_bits_hook(self):
        class Custom:
            def payload_bits(self):
                return 7

        assert bit_size(Custom()) == 7

    @given(st.integers(-(10**9), 10**9))
    def test_int_bits_positive(self, n):
        assert bit_size(n) >= 2

    @given(st.lists(st.integers(-100, 100), max_size=8))
    def test_list_additive(self, items):
        total = bit_size(list(items))
        assert total >= 2 + sum(bit_size(i) for i in items)


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash64((1, 2, 3)) == stable_hash64((1, 2, 3))

    def test_order_sensitive(self):
        assert stable_hash64((1, 2)) != stable_hash64((2, 1))

    @given(st.lists(st.integers(-(2**80), 2**80), min_size=1, max_size=5))
    def test_in_64_bit_range(self, parts):
        h = stable_hash64(parts)
        assert 0 <= h < 2**64

    @given(st.integers(0, 2**64 - 1))
    def test_seed_spread(self, seed):
        # neighbouring seeds should not collide (smoke check of mixing)
        assert stable_hash64((seed,)) != stable_hash64((seed + 1,))


class TestMisc:
    def test_is_odd(self):
        assert is_odd(3) and not is_odd(4)

    def test_require(self):
        require(True, "fine")
        with pytest.raises(ConfigurationError, match="broken"):
            require(False, "broken")

    def test_pairwise_disjoint(self):
        assert pairwise_disjoint([frozenset({1}), frozenset({2})])
        assert not pairwise_disjoint([frozenset({1}), frozenset({1, 2})])

    def test_geometric_mean(self):
        assert geometric_mean([]) == 0.0
        assert geometric_mean([4.0, 9.0]) == pytest.approx(6.0)
