"""The sweep daemon round-trip: submit → stream → result → cached resubmit.

Runs a real :class:`~repro.serve.daemon.SweepService` behind a real
``ThreadingHTTPServer`` on an ephemeral port and drives it with the
real :mod:`repro.serve.client` — the same code path ``repro serve`` /
``repro submit`` use, minus the argv parsing.
"""

from __future__ import annotations

import threading

import pytest

from repro.serve.client import (
    ServeError,
    job_status,
    request_json,
    submit_job,
    wait_for_job,
)
from repro.serve.daemon import SweepService, make_server


@pytest.fixture
def daemon(tmp_path):
    """A live daemon on an ephemeral port; yields (base_url, service)."""
    service = SweepService(
        tmp_path / "serve", workers=0, cache="rw", cache_dir=str(tmp_path / "cache")
    )
    server = make_server("127.0.0.1", 0, service, quiet=True)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://{host}:{port}", service
    finally:
        service.stop()
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
        service.join(timeout=5)


class TestRoundTrip:
    def test_healthz(self, daemon):
        base_url, _service = daemon
        health = request_json(base_url, "/healthz")
        assert health["ok"] is True
        assert health["jobs"] == 0
        assert "cache_counters" in health

    def test_submit_wait_result_then_cached_resubmit(self, daemon, tmp_path):
        base_url, _service = daemon

        view = submit_job(base_url, "thm6", quick=True, workers=0)
        assert view["job_id"] == "job-0001"
        assert view["status"] in ("queued", "running")
        assert "result" not in view  # the view never carries the body

        cold = wait_for_job(base_url, view["job_id"], timeout=120.0)
        assert cold["status"] == "done"
        result = cold["result"]
        assert result["exp_id"] == "EXP-T6"
        assert result["rows"]
        assert cold["cache_events"]["store"] > 0
        assert cold["cache_events"].get("hit", 0) == 0

        # every job runs under a streaming observation session
        session_dir = tmp_path / "serve" / "sessions" / "job-0001"
        assert (session_dir / "events.jsonl").exists()
        assert (session_dir / "manifest.json").exists()

        # the identical resubmission is answered from cache, bit-identically
        second = submit_job(base_url, "thm6", quick=True, workers=0)
        warm = wait_for_job(base_url, second["job_id"], timeout=120.0)
        assert warm["cache_events"]["hit"] > 0
        assert warm["cache_events"].get("store", 0) == 0
        assert warm["result"]["rows"] == result["rows"]
        assert warm["result"]["headers"] == result["headers"]
        assert warm["result"]["summary"] == result["summary"]

    def test_jobs_listing(self, daemon):
        base_url, _service = daemon
        submit_job(base_url, "fig1")
        wait_for_job(base_url, "job-0001", timeout=60.0)
        listing = request_json(base_url, "/jobs")
        assert [j["job_id"] for j in listing["jobs"]] == ["job-0001"]
        assert job_status(base_url, "job-0001")["experiment"] == "fig1"


class TestErrorPaths:
    def test_unknown_experiment_is_400(self, daemon):
        base_url, _service = daemon
        with pytest.raises(ServeError) as exc:
            submit_job(base_url, "nonsense")
        assert exc.value.status == 400
        assert "unknown experiment" in str(exc.value)

    def test_bad_cache_mode_is_400(self, daemon):
        base_url, _service = daemon
        with pytest.raises(ServeError) as exc:
            submit_job(base_url, "fig1", cache="write-back")
        assert exc.value.status == 400

    def test_bad_backend_is_400(self, daemon):
        base_url, _service = daemon
        with pytest.raises(ServeError) as exc:
            submit_job(base_url, "fig1", backend="gpu")
        assert exc.value.status == 400

    def test_unknown_job_is_404(self, daemon):
        base_url, _service = daemon
        with pytest.raises(ServeError) as exc:
            request_json(base_url, "/jobs/job-9999/result")
        assert exc.value.status == 404

    def test_pending_result_is_409(self, daemon):
        base_url, service = daemon
        # enqueue directly without waking the scheduler thread's next poll
        view = service.submit({"experiment": "fig1"})
        try:
            payload = request_json(base_url, f"/jobs/{view['job_id']}/result")
        except ServeError as exc:
            assert exc.status == 409
        else:  # the scheduler may have already finished it — also fine
            assert payload["status"] == "done"

    def test_unknown_endpoint_is_404(self, daemon):
        base_url, _service = daemon
        with pytest.raises(ServeError) as exc:
            request_json(base_url, "/nope")
        assert exc.value.status == 404

    def test_malformed_body_is_400(self, daemon):
        base_url, _service = daemon
        import urllib.request

        req = urllib.request.Request(
            base_url + "/jobs", data=b"not json", method="POST"
        )
        with pytest.raises(Exception) as exc:
            urllib.request.urlopen(req, timeout=10)
        assert getattr(exc.value, "code", None) == 400
